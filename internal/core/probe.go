package core

import (
	"math"
	"sort"
	"time"

	"repro/internal/component"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
)

// probeState is the state a (logical) probe carries while walking the
// function graph in topological order: the partial component assignment,
// the QoS accumulated over assigned components and the virtual links
// between them, and the probe's own travel time. Physically the paper's
// probes fork at split points and merge at the deputy (Figure 2); walking
// partial assignments in topological order produces the same component
// graphs, the same per-hop checks, and the same number of probe
// transmissions, with the branch merge performed incrementally.
type probeState struct {
	comps   []component.ComponentID // per position; valid for assigned set
	acc     qos.Vector
	latency float64 // ms travelled
	id      int64   // tracer span ID; 0 when tracing is disabled (or root)
}

// walkState tracks per-request probing context.
type walkState struct {
	req        *component.Request
	owner      state.Owner
	expires    time.Duration
	budget     int // remaining probe sends (MaxProbesPerRequest)
	maxLatency float64
	candidates map[component.FunctionID][]component.ComponentID
	routes     map[[2]int]overlay.Route
}

func (c *Composer) newWalkState(req *component.Request) *walkState {
	return &walkState{
		req:        req,
		owner:      state.Owner(req.ID),
		expires:    c.env.Now() + c.cfg.HoldTTL,
		budget:     c.cfg.MaxProbesPerRequest,
		candidates: make(map[component.FunctionID][]component.ComponentID),
		routes:     make(map[[2]int]overlay.Route),
	}
}

// lookup resolves a function's candidates, caching per request so the
// discovery system is charged once per function (§3.3 step 2).
func (w *walkState) lookup(c *Composer, f component.FunctionID) []component.ComponentID {
	if ids, ok := w.candidates[f]; ok {
		return ids
	}
	ids := c.env.Registry.Lookup(f)
	w.candidates[f] = ids
	return ids
}

// route returns the virtual link between two overlay nodes, cached per
// request: probe trees revisit the same node pairs many times.
func (w *walkState) route(c *Composer, from, to int) overlay.Route {
	key := [2]int{from, to}
	if r, ok := w.routes[key]; ok {
		return r
	}
	r, ok := c.env.Mesh.RouteBetween(from, to)
	if !ok {
		// Build keeps the overlay connected; an unreachable pair would
		// indicate a hand-assembled mesh. Mark it infeasible.
		r = overlay.Route{QoS: qos.Vector{Delay: math.Inf(1), LossCost: math.Inf(1)}}
	}
	w.routes[key] = r
	return r
}

// probeWalk runs the hop-by-hop probing protocol (Figure 3) for the
// probing algorithms (ACP, Optimal, SP, RP): extend probes position by
// position in topological order, applying per-hop candidate selection,
// conformance checking and transient allocation, then select the best
// qualified composition at the deputy.
func (c *Composer) probeWalk(req *component.Request) (*Outcome, error) {
	w := c.newWalkState(req)
	out := &Outcome{Request: req}
	tr := c.env.Tracer
	tr.RequestReceived(req.ID, req.Client)

	order, err := req.Graph.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Exhaustive-search accounting: the paper measures Optimal's
	// overhead as "the number of probes required by the exhaustive
	// search" (§4.2) — the full candidate tree, independent of the sound
	// early pruning our walk applies (dropping a probe whose prefix is
	// already unqualified cannot change which composition wins). Charge
	// that full cost up front and skip per-send counting below.
	exhaustive := c.cfg.Algorithm == AlgOptimal
	if exhaustive {
		total, width := int64(0), int64(1)
		for _, pos := range order {
			k := int64(len(w.lookup(c, req.Graph.Functions[pos])))
			width *= k
			if width > 1<<40 {
				width = 1 << 40 // clamp pathological fan-out
			}
			total += width
		}
		c.env.Counters.AddProbes(total)
		out.ProbesSent = clampToInt(total)
	}

	// Probes expand depth-first: a probe tree in the real protocol fans
	// out in parallel, but expansion order does not change which
	// extensions happen or how many messages are sent — except when the
	// probe budget binds, where depth-first guarantees the budget is
	// spent completing compositions rather than stranding every probe
	// mid-graph.
	var alive []probeState
	var expand func(p probeState, idx int)
	expand = func(p probeState, idx int) {
		if idx == len(order) {
			alive = append(alive, p)
			return
		}
		children := c.extendProbe(w, out, p, order[idx], idx == 0)
		if p.id != 0 {
			// Close the parent's span: it survived its own hop and its
			// children (possibly zero) carry the walk on.
			tr.ProbeForwarded(req.ID, p.id, order[idx-1],
				c.env.Catalog.Component(p.comps[order[idx-1]]).Node, len(children))
		}
		for _, child := range children {
			expand(child, idx+1)
		}
	}
	expand(probeState{comps: make([]component.ComponentID, req.Graph.NumPositions())}, 0)

	// Complete probes travel back to the deputy (§3.3 step 3).
	lastPos := 0
	if len(order) > 0 {
		lastPos = order[len(order)-1]
	}
	for _, p := range alive {
		node := c.env.Catalog.Component(p.comps[lastPos]).Node
		l := p.latency + w.route(c, node, req.Client).QoS.Delay
		if l > w.maxLatency {
			w.maxLatency = l
		}
		tr.ProbeReturned(req.ID, p.id, node, l)
	}
	c.env.Counters.AddProbeReturns(int64(len(alive)))
	out.PathsReturned = len(alive)

	best, qualified := c.selectBest(w, alive)
	out.Qualified = qualified
	out.Latency = 2 * time.Duration(w.maxLatency*float64(time.Millisecond))

	if best == nil {
		c.env.Ledger.ReleaseOwner(w.owner)
		tr.HoldReleased(req.ID, -1)
		tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
		return out, nil
	}
	// The deputy has decided: cancel the transient allocations of every
	// losing probe and keep only the winning composition reserved until
	// the confirmation message arrives (§3.3 step 4). Without this,
	// loser holds would squat on candidate nodes for the full timeout,
	// starving concurrent requests in proportion to the probe fan-out.
	c.env.Ledger.ReleaseOwner(w.owner)
	tr.HoldReleased(req.ID, -1)
	if c.cfg.TransientAllocation {
		if !c.holdComposition(w, best) {
			c.env.Ledger.ReleaseOwner(w.owner)
			tr.HoldReleased(req.ID, -1)
			tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
			return out, nil
		}
	}
	out.Best = best
	tr.Decided(req.ID, req.Client, "")
	return out, nil
}

// holdComposition places aggregated transient holds covering exactly one
// composition's demands. It reports false if any hold cannot be placed
// (impossible within a single probing walk, but defended regardless).
func (c *Composer) holdComposition(w *walkState, comp *Composition) bool {
	nodes, links := c.demands(w.req, comp)
	for node, amount := range nodes {
		if !c.env.Ledger.HoldNode(w.owner, 0, node, amount, w.expires) {
			return false
		}
		c.env.Tracer.HoldAcquired(w.req.ID, 0, -1, node)
	}
	for link, bw := range links {
		if !c.env.Ledger.HoldLink(w.owner, 0, link, bw, w.expires) {
			return false
		}
	}
	return true
}

// predecessorRoutes collects the virtual links from each already-assigned
// predecessor of pos to the candidate node, accumulating their QoS. The
// bool result is false if any predecessor link cannot carry the
// bandwidth requirement per the given availability function.
func (c *Composer) predecessorRoutes(w *walkState, p probeState, pos, candNode int) ([]overlay.Route, qos.Vector) {
	preds := w.req.Graph.Predecessors(pos)
	routes := make([]overlay.Route, len(preds))
	var linkQoS qos.Vector
	for i, pred := range preds {
		from := c.env.Catalog.Component(p.comps[pred]).Node
		routes[i] = w.route(c, from, candNode)
		linkQoS = linkQoS.Add(routes[i].QoS)
	}
	return routes, linkQoS
}

// extendProbe performs one hop of per-hop probe processing (§3.3 step 2)
// for probe p choosing a component for graph position pos: discover
// candidates, select which to probe, send child probes, apply the
// precise conformance check and transient allocation at each candidate,
// and return the surviving child probes. isSource marks the graph's
// source position, whose probe hop starts from the deputy node.
func (c *Composer) extendProbe(w *walkState, out *Outcome, p probeState, pos int, isSource bool) []probeState {
	fn := w.req.Graph.Functions[pos]
	candidates := w.lookup(c, fn)
	if len(candidates) == 0 {
		return nil
	}
	selected := c.selectCandidates(w, p, pos, candidates)
	tr := c.env.Tracer

	var children []probeState
	for i, id := range selected {
		if w.budget <= 0 {
			if tr.Enabled() {
				for _, cut := range selected[i:] {
					tr.CandidatePruned(w.req.ID, 0, pos, c.env.Catalog.Component(cut).Node, obs.ReasonBudget)
				}
			}
			break
		}
		w.budget--
		// Sending the probe to the candidate costs one message whether
		// or not the candidate turns out to qualify. Optimal's full
		// exhaustive cost was charged up front in probeWalk.
		if c.cfg.Algorithm != AlgOptimal {
			c.env.Counters.AddProbes(1)
			out.ProbesSent++
		}

		cand := c.env.Catalog.Component(id)
		routes, linkQoS := c.predecessorRoutes(w, p, pos, cand.Node)
		acc := p.acc.Add(linkQoS).Add(cand.QoS)

		// The probe physically travels from the previous hop's node (the
		// deputy for the source position).
		travelFrom := w.req.Client
		if !isSource {
			travelFrom = c.env.Catalog.Component(p.comps[w.req.Graph.Predecessors(pos)[0]]).Node
		}
		latency := p.latency + w.route(c, travelFrom, cand.Node).QoS.Delay
		if latency > w.maxLatency {
			w.maxLatency = latency
		}

		var pid int64
		if tr.Enabled() {
			pid = tr.NextProbeID()
			tr.ProbeSpawned(w.req.ID, pid, pos, cand.Node, latency)
		}

		// Precise conformance check at the candidate's node: accumulated
		// QoS against the user requirement (Eq. 6), application-specific
		// constraints (security level, §6), and precise local resource
		// states (Eqs. 7-8). Unqualified probes are dropped immediately
		// to reduce probing overhead.
		if acc.MaxRatio(w.req.QoSReq) > 1 {
			tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		if cand.Security < w.req.MinSecurity {
			tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		if !c.env.Ledger.NodeAvailableFor(w.owner, cand.Node).Covers(w.req.ResReq[pos]) {
			tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonResources)
			continue
		}
		feasible := true
		for _, route := range routes {
			if c.env.Ledger.RouteAvailableFor(w.owner, route) < w.req.BandwidthReq {
				feasible = false
				break
			}
		}
		if !feasible {
			tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}

		// Transient resource allocation (§3.3 step 2): reserve once per
		// component (tag = position) and per virtual link hop. A probe
		// that cannot secure its allocation is dropped.
		if c.cfg.TransientAllocation {
			if !c.env.Ledger.HoldNode(w.owner, pos, cand.Node, w.req.ResReq[pos], w.expires) {
				tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonHoldNode)
				continue
			}
			tr.HoldAcquired(w.req.ID, pid, pos, cand.Node)
			held := true
			for _, route := range routes {
				for _, link := range route.Links {
					// Link holds are tagged by position so distinct
					// edges of the same request stack correctly.
					if !c.env.Ledger.HoldLink(w.owner, pos, link, w.req.BandwidthReq, w.expires) {
						held = false
						break
					}
				}
				if !held {
					break
				}
			}
			if !held {
				tr.CandidatePruned(w.req.ID, pid, pos, cand.Node, obs.ReasonHoldLink)
				continue
			}
		}

		comps := make([]component.ComponentID, len(p.comps))
		copy(comps, p.comps)
		comps[pos] = id
		children = append(children, probeState{comps: comps, acc: acc, latency: latency, id: pid})
	}
	return children
}

// selectCandidates picks the M = ceil(alpha*k) next-hop candidates to
// probe (§3.5). For Optimal every candidate is probed. For the guided
// policies the coarse global state prefilters unqualified candidates
// (Eqs. 6-8) and ranks survivors by the risk function D (Eq. 9) and the
// congestion function W (Eq. 10); SelectRandom (RP) picks uniformly
// without consulting the global state.
func (c *Composer) selectCandidates(w *walkState, p probeState, pos int, candidates []component.ComponentID) []component.ComponentID {
	if c.cfg.Algorithm == AlgOptimal {
		return candidates
	}
	m := int(math.Ceil(c.cfg.ProbingRatio * float64(len(candidates))))
	if m < 1 {
		m = 1
	}

	tr := c.env.Tracer
	if c.cfg.Selection == SelectRandom {
		if m >= len(candidates) {
			return candidates
		}
		picked := make([]component.ComponentID, len(candidates))
		copy(picked, candidates)
		c.env.Rand.Shuffle(len(picked), func(i, j int) { picked[i], picked[j] = picked[j], picked[i] })
		if tr.Enabled() {
			for _, cut := range picked[m:] {
				tr.CandidatePruned(w.req.ID, 0, pos, c.env.Catalog.Component(cut).Node, obs.ReasonRandomRank)
			}
		}
		return picked[:m]
	}

	type ranked struct {
		id   component.ComponentID
		node int
		risk float64
		cong float64
	}
	qualified := make([]ranked, 0, len(candidates))
	for _, id := range candidates {
		cand := c.env.Catalog.Component(id)
		if cand.Security < w.req.MinSecurity {
			tr.CandidatePruned(w.req.ID, 0, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		routes, linkQoS := c.predecessorRoutes(w, p, pos, cand.Node)

		// Coarse-grain qualification (Eqs. 6-8) from the global state.
		acc := p.acc.Add(linkQoS).Add(cand.QoS)
		risk := acc.MaxRatio(w.req.QoSReq)
		if risk > 1 {
			tr.CandidatePruned(w.req.ID, 0, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		avail := c.env.Global.NodeAvailable(cand.Node)
		if !avail.Covers(w.req.ResReq[pos]) {
			tr.CandidatePruned(w.req.ID, 0, pos, cand.Node, obs.ReasonResources)
			continue
		}
		routeBW := math.Inf(1)
		for _, route := range routes {
			routeBW = math.Min(routeBW, c.env.Global.RouteAvailable(route))
		}
		if routeBW < w.req.BandwidthReq {
			tr.CandidatePruned(w.req.ID, 0, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}

		// Congestion function W (Eq. 10) on coarse residuals.
		cong := qos.CongestionTerm(w.req.ResReq[pos], avail.Sub(w.req.ResReq[pos])) +
			qos.BandwidthCongestionTerm(w.req.BandwidthReq, routeBW-w.req.BandwidthReq)
		qualified = append(qualified, ranked{id: id, node: cand.Node, risk: risk, cong: cong})
	}
	if len(qualified) <= m {
		out := make([]component.ComponentID, len(qualified))
		for i, q := range qualified {
			out[i] = q.id
		}
		return out
	}

	less := c.rankLess()
	sort.SliceStable(qualified, func(i, j int) bool {
		return less(qualified[i].risk, qualified[i].cong, qualified[j].risk, qualified[j].cong)
	})
	if tr.Enabled() {
		for _, cut := range qualified[m:] {
			tr.CandidatePruned(w.req.ID, 0, pos, cut.node,
				rankCutReason(c.cfg.Selection, cut.risk, qualified[m-1].risk))
		}
	}
	out := make([]component.ComponentID, m)
	for i := 0; i < m; i++ {
		out[i] = qualified[i].id
	}
	return out
}

// rankCutReason attributes a ranking cut to the risk function D or the
// congestion function W: a cut candidate whose risk differs from the last
// admitted one's by more than the 5% similarity band lost on risk; one
// inside the band was tie-broken by congestion.
func rankCutReason(sel SelectionPolicy, cutRisk, lastKeptRisk float64) obs.Reason {
	const band = 0.05
	switch sel {
	case SelectRiskOnly:
		return obs.ReasonRiskRank
	case SelectCongestionOnly:
		return obs.ReasonCongestionRank
	default:
		if math.Abs(cutRisk-lastKeptRisk) > band*math.Max(cutRisk, lastKeptRisk) {
			return obs.ReasonRiskRank
		}
		return obs.ReasonCongestionRank
	}
}

// rankLess returns the comparison for the configured selection policy.
// The paper compares risk values first and falls back to the congestion
// function when risks are similar; "similar" is a 5% relative band.
func (c *Composer) rankLess() func(ri, ci, rj, cj float64) bool {
	const band = 0.05
	switch c.cfg.Selection {
	case SelectRiskOnly:
		return func(ri, _, rj, _ float64) bool { return ri < rj }
	case SelectCongestionOnly:
		return func(_, ci, _, cj float64) bool { return ci < cj }
	default: // SelectRiskThenCongestion
		return func(ri, ci, rj, cj float64) bool {
			if math.Abs(ri-rj) > band*math.Max(ri, rj) {
				return ri < rj
			}
			return ci < cj
		}
	}
}

// selectBest evaluates complete probes against the constraints
// (Eqs. 2-5) using precise probed state and returns the winner: the
// phi-minimal qualified composition for ACP/Optimal/RP, or a random
// qualified one for SP. It also reports how many probes qualified.
func (c *Composer) selectBest(w *walkState, complete []probeState) (*Composition, int) {
	var (
		best      *Composition
		qualified int
	)
	for _, p := range complete {
		comp, ok := c.evaluate(w, p.comps)
		if !ok {
			continue
		}
		qualified++
		switch {
		case best == nil:
			best = comp
		case c.cfg.Algorithm == AlgSP:
			// Reservoir-sample uniformly among qualified compositions.
			if c.env.Rand.Intn(qualified) == 0 {
				best = comp
			}
		case comp.Phi < best.Phi:
			best = comp
		}
	}
	return best, qualified
}

// evaluate builds the full composition for an assignment and checks the
// optimization constraints: function coverage is structural (Eq. 2), the
// aggregated QoS must satisfy the requirement (Eq. 3), and residual node
// resources and link bandwidths must stay non-negative (Eqs. 4-5)
// against the request's own-credited precise availability.
func (c *Composer) evaluate(w *walkState, assign []component.ComponentID) (*Composition, bool) {
	req := w.req
	comp := &Composition{
		Components: assign,
		Routes:     make([]overlay.Route, len(req.Graph.Edges)),
	}
	for _, id := range assign {
		chosen := c.env.Catalog.Component(id)
		if chosen.Security < req.MinSecurity {
			return nil, false
		}
		comp.QoS = comp.QoS.Add(chosen.QoS)
	}
	for i, e := range req.Graph.Edges {
		from := c.env.Catalog.Component(assign[e.From]).Node
		to := c.env.Catalog.Component(assign[e.To]).Node
		route := w.route(c, from, to)
		comp.Routes[i] = route
		comp.QoS = comp.QoS.Add(route.QoS)
	}
	if comp.QoS.MaxRatio(req.QoSReq) > 1 {
		return nil, false
	}

	nodes, links := c.demands(req, comp)
	for node, demand := range nodes {
		if !c.env.Ledger.NodeAvailableFor(w.owner, node).Covers(demand) {
			return nil, false
		}
	}
	for link, bw := range links {
		if c.env.Ledger.LinkAvailableFor(w.owner, link) < bw {
			return nil, false
		}
	}
	comp.Phi = c.phi(req, assign, comp.Routes, nodes, links)
	return comp, true
}

// probeDirect implements the Random and Static heuristics: choose one
// candidate per position outright, verify the composition with a single
// probe along it, and use it if qualified.
func (c *Composer) probeDirect(req *component.Request) (*Outcome, error) {
	w := c.newWalkState(req)
	out := &Outcome{Request: req}
	tr := c.env.Tracer
	tr.RequestReceived(req.ID, req.Client)

	n := req.Graph.NumPositions()
	assign := make([]component.ComponentID, n)
	for pos := 0; pos < n; pos++ {
		candidates := w.lookup(c, req.Graph.Functions[pos])
		if len(candidates) == 0 {
			tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
			return out, nil
		}
		switch c.cfg.Algorithm {
		case AlgRandom:
			assign[pos] = candidates[c.env.Rand.Intn(len(candidates))]
		default: // AlgStatic: a fixed choice per function
			assign[pos] = candidates[0]
		}
	}

	// One verification probe visits each chosen component in turn; each
	// hop is charged as one probe message.
	c.env.Counters.AddProbes(int64(n))
	out.ProbesSent = n
	prev := req.Client
	latency := 0.0
	var lastPid int64
	for pos, id := range assign {
		node := c.env.Catalog.Component(id).Node
		latency += w.route(c, prev, node).QoS.Delay
		prev = node
		if tr.Enabled() {
			pid := tr.NextProbeID()
			tr.ProbeSpawned(req.ID, pid, pos, node, latency)
			if pos < n-1 {
				tr.ProbeForwarded(req.ID, pid, pos, node, 1)
			} else {
				lastPid = pid
			}
		}
	}
	latency += w.route(c, prev, req.Client).QoS.Delay
	if lastPid != 0 {
		tr.ProbeReturned(req.ID, lastPid, prev, latency)
	}
	w.maxLatency = latency
	c.env.Counters.AddProbeReturns(1)
	out.PathsReturned = 1
	out.Latency = 2 * time.Duration(w.maxLatency*float64(time.Millisecond))

	comp, ok := c.evaluate(w, assign)
	if !ok {
		tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
		return out, nil
	}
	if c.cfg.TransientAllocation {
		// The verification probe transiently reserves what it visits so
		// the allocation survives until the confirmation arrives.
		for pos, id := range assign {
			node := c.env.Catalog.Component(id).Node
			if !c.env.Ledger.HoldNode(w.owner, pos, node, req.ResReq[pos], w.expires) {
				c.env.Ledger.ReleaseOwner(w.owner)
				tr.HoldReleased(req.ID, -1)
				tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
				return out, nil
			}
			tr.HoldAcquired(req.ID, 0, pos, node)
		}
		for i, route := range comp.Routes {
			for _, link := range route.Links {
				if !c.env.Ledger.HoldLink(w.owner, i, link, req.BandwidthReq, w.expires) {
					c.env.Ledger.ReleaseOwner(w.owner)
					tr.HoldReleased(req.ID, -1)
					tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
					return out, nil
				}
			}
		}
	}
	out.Qualified = 1
	out.Best = comp
	tr.Decided(req.ID, req.Client, "")
	return out, nil
}

// clampToInt narrows an int64 probe count to int without overflow. The
// accounting loop above clamps the per-position width, not the running
// total, so on 32-bit platforms the total can exceed MaxInt32 and a
// plain conversion would wrap negative.
func clampToInt(v int64) int {
	if v > math.MaxInt {
		return math.MaxInt
	}
	return int(v)
}
