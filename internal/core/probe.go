package core

import (
	"math"
	"time"

	"repro/internal/component"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
)

// probeState is a probe that completed the function graph: the full
// component assignment (an arena-backed snapshot), the QoS accumulated
// over assigned components and the virtual links between them, and the
// probe's own travel time. Physically the paper's probes fork at split
// points and merge at the deputy (Figure 2); walking partial assignments
// in topological order produces the same component graphs, the same
// per-hop checks, and the same number of probe transmissions, with the
// branch merge performed incrementally.
type probeState struct {
	comps   []component.ComponentID // per position; points into the walk arena
	acc     qos.Vector
	latency float64 // ms travelled
	id      int64   // tracer span ID; 0 when tracing is disabled (or root)
}

// hopChild is a probe mid-walk. Unlike probeState it carries only the
// component chosen at its own hop: the rest of the prefix lives in the
// walk's shared cursor assignment, which the depth-first expansion keeps
// in sync with the recursion path — so extending a probe never copies
// the whole assignment.
type hopChild struct {
	choice  component.ComponentID
	acc     qos.Vector
	latency float64
	id      int64
}

// walkState tracks the per-request probing context.
type walkState struct {
	req        *component.Request
	owner      state.Owner
	expires    time.Duration
	budget     int // remaining probe sends (MaxProbesPerRequest)
	maxLatency float64
}

// nodeDemand and linkDemand accumulate a composition's per-node resource
// and per-overlay-link bandwidth demands as small dense slices. The hot
// path scans them linearly — compositions touch a handful of nodes and
// links, where a scan beats a map and, unlike map iteration, keeps the
// floating-point summation order deterministic.
type nodeDemand struct {
	node   int
	amount qos.Resources
}

type linkDemand struct {
	link int
	bw   float64
}

// rankedCand is one coarse-qualified candidate in per-hop selection.
type rankedCand struct {
	id   component.ComponentID
	node int
	risk float64
	cong float64
}

// walkScratch holds the composer-lifetime buffers that make the probe
// walk (near-)allocation-free in steady state. Buffers are reset, never
// freed, so capacity amortizes across requests. The route cache is keyed
// from*N+to over the immutable mesh, so it persists for the composer's
// whole lifetime; the candidate cache is invalidated per request by an
// epoch counter because the catalog may change between requests (node
// failures, migration).
type walkScratch struct {
	numNodes   int
	routes     []overlay.Route // flat from*numNodes+to cache
	routeKnown []bool

	cands     [][]component.ComponentID // per FunctionID, epoch-guarded
	candEpoch []uint64
	epoch     uint64

	cur   []component.ComponentID // DFS cursor assignment, one slot per position
	arena []component.ComponentID // completed assignments, shared prefix storage
	alive []probeState            // probes that completed the graph

	children   [][]hopChild    // per-depth extendProbe output
	predRoutes []overlay.Route // predecessorRoutes result buffer
	preds      [][]int         // per-position predecessor lists, rebuilt per walk
	predFlat   []int           // backing store for preds
	predCounts []int           // per-position indegree scratch
	ranked     []rankedCand    // selectCandidates ranking buffer
	selected   []component.ComponentID
	heldLinks  []int // links newly held by the current candidate

	nodeDemands []nodeDemand
	linkDemands []linkDemand
	residuals   []qos.Resources

	evalBuf [2]Composition // double-buffered composition evaluation
	evalIdx int
}

func newWalkScratch(env *Env) walkScratch {
	n := env.Mesh.NumNodes()
	f := env.Catalog.NumFunctions()
	return walkScratch{
		numNodes:   n,
		routes:     make([]overlay.Route, n*n),
		routeKnown: make([]bool, n*n),
		cands:      make([][]component.ComponentID, f),
		candEpoch:  make([]uint64, f),
	}
}

// beginWalk resets the per-request scratch state.
func (c *Composer) beginWalk(req *component.Request) {
	sc := &c.scratch
	sc.epoch++
	sc.arena = sc.arena[:0]
	sc.alive = sc.alive[:0]
	n := req.Graph.NumPositions()
	if cap(sc.cur) < n {
		sc.cur = make([]component.ComponentID, n)
	} else {
		sc.cur = sc.cur[:n]
		for i := range sc.cur {
			sc.cur[i] = 0
		}
	}
	// Bucket the graph's edges into per-position predecessor lists once
	// per walk: Graph.Predecessors allocates on every call, and the hot
	// path asks once per candidate per hop. Buckets keep edge order, so
	// the lists match Graph.Predecessors element for element.
	edges := req.Graph.Edges
	if cap(sc.predFlat) < len(edges) {
		sc.predFlat = make([]int, len(edges))
	}
	if cap(sc.preds) < n {
		sc.preds = make([][]int, n)
	}
	if cap(sc.predCounts) < n {
		sc.predCounts = make([]int, n)
	}
	sc.preds = sc.preds[:n]
	sc.predCounts = sc.predCounts[:n]
	for i := range sc.predCounts {
		sc.predCounts[i] = 0
	}
	for _, e := range edges {
		sc.predCounts[e.To]++
	}
	off := 0
	for p := 0; p < n; p++ {
		sc.preds[p] = sc.predFlat[off : off : off+sc.predCounts[p]]
		off += sc.predCounts[p]
	}
	for _, e := range edges {
		sc.preds[e.To] = append(sc.preds[e.To], e.From)
	}
	c.walk = walkState{
		req:     req,
		owner:   state.Owner(req.ID),
		expires: c.env.Now() + c.cfg.HoldTTL,
		budget:  c.cfg.MaxProbesPerRequest,
	}
}

// lookup resolves a function's candidates, caching per request so the
// discovery system is charged once per function (§3.3 step 2).
//
//acp:hotpath
func (c *Composer) lookup(f component.FunctionID) []component.ComponentID {
	sc := &c.scratch
	if int(f) < 0 || int(f) >= len(sc.cands) {
		// A function the catalog has never heard of; don't cache.
		return c.env.Registry.Lookup(f)
	}
	if sc.candEpoch[f] == sc.epoch {
		return sc.cands[f]
	}
	ids := c.env.Registry.Lookup(f)
	sc.cands[f] = ids
	sc.candEpoch[f] = sc.epoch
	return ids
}

// route returns the virtual link between two overlay nodes from the flat
// composer-lifetime cache: probe trees revisit the same node pairs many
// times, and the mesh topology is immutable for the composer's lifetime,
// so each pair pays RouteBetween's path reconstruction exactly once.
//
//acp:hotpath
func (c *Composer) route(from, to int) overlay.Route {
	sc := &c.scratch
	idx := from*sc.numNodes + to
	if !sc.routeKnown[idx] {
		r, ok := c.env.Mesh.RouteBetween(from, to)
		if !ok {
			// Build keeps the overlay connected; an unreachable pair would
			// indicate a hand-assembled mesh. Mark it infeasible.
			r = overlay.Route{QoS: qos.Vector{Delay: math.Inf(1), LossCost: math.Inf(1)}}
		}
		sc.routes[idx] = r
		sc.routeKnown[idx] = true
	}
	return sc.routes[idx]
}

// probeWalk runs the hop-by-hop probing protocol (Figure 3) for the
// probing algorithms (ACP, Optimal, SP, RP): extend probes position by
// position in topological order, applying per-hop candidate selection,
// conformance checking and transient allocation, then select the best
// qualified composition at the deputy.
func (c *Composer) probeWalk(req *component.Request) (*Outcome, error) {
	c.beginWalk(req)
	w := &c.walk
	out := &Outcome{Request: req}
	tr := c.env.Tracer
	tr.RequestReceived(req.ID, req.Client)

	order, err := req.Graph.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Exhaustive-search accounting: the paper measures Optimal's
	// overhead as "the number of probes required by the exhaustive
	// search" (§4.2) — the full candidate tree, independent of the sound
	// early pruning our walk applies (dropping a probe whose prefix is
	// already unqualified cannot change which composition wins). Charge
	// that full cost up front and skip per-send counting below.
	exhaustive := c.cfg.Algorithm == AlgOptimal
	if exhaustive {
		total, width := int64(0), int64(1)
		for _, pos := range order {
			k := int64(len(c.lookup(req.Graph.Functions[pos])))
			width *= k
			if width > 1<<40 {
				width = 1 << 40 // clamp pathological fan-out
			}
			total += width
		}
		c.env.Counters.AddProbes(total)
		out.ProbesSent = clampToInt(total)
	}

	// Probes expand depth-first: a probe tree in the real protocol fans
	// out in parallel, but expansion order does not change which
	// extensions happen or how many messages are sent — except when the
	// probe budget binds, where depth-first guarantees the budget is
	// spent completing compositions rather than stranding every probe
	// mid-graph.
	c.expand(out, order, 0, hopChild{})
	alive := c.scratch.alive

	// Complete probes travel back to the deputy (§3.3 step 3).
	lastPos := 0
	if len(order) > 0 {
		lastPos = order[len(order)-1]
	}
	for i := range alive {
		p := &alive[i]
		node := c.env.Catalog.Component(p.comps[lastPos]).Node
		l := p.latency + c.route(node, req.Client).QoS.Delay
		if l > w.maxLatency {
			w.maxLatency = l
		}
		tr.ProbeReturned(req.ID, p.id, node, l)
	}
	c.env.Counters.AddProbeReturns(int64(len(alive)))
	out.PathsReturned = len(alive)

	best, qualified := c.selectBest(alive)
	out.Qualified = qualified
	out.Latency = 2 * time.Duration(w.maxLatency*float64(time.Millisecond))

	if best == nil {
		c.env.Ledger.ReleaseOwner(w.owner)
		tr.HoldReleased(req.ID, -1)
		tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
		return out, nil
	}
	// The deputy has decided: cancel the transient allocations of every
	// losing probe and keep only the winning composition reserved until
	// the confirmation message arrives (§3.3 step 4). Without this,
	// loser holds would squat on candidate nodes for the full timeout,
	// starving concurrent requests in proportion to the probe fan-out.
	c.env.Ledger.ReleaseOwner(w.owner)
	tr.HoldReleased(req.ID, -1)
	if c.cfg.TransientAllocation {
		if !c.holdComposition(best) {
			c.env.Ledger.ReleaseOwner(w.owner)
			tr.HoldReleased(req.ID, -1)
			tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
			return out, nil
		}
	}
	out.Best = best
	tr.Decided(req.ID, req.Client, "")
	return out, nil
}

// expand grows the probe tree depth-first from probe p at graph position
// order[idx]. The walk cursor holds p's assignment prefix; completed
// probes snapshot the cursor into the arena, whose append-only growth
// keeps earlier snapshots valid even when the backing array is reallocated.
func (c *Composer) expand(out *Outcome, order []int, idx int, p hopChild) {
	sc := &c.scratch
	req := c.walk.req
	if idx == len(order) {
		base := len(sc.arena)
		sc.arena = append(sc.arena, sc.cur...)
		sc.alive = append(sc.alive, probeState{
			comps:   sc.arena[base : base+len(sc.cur)],
			acc:     p.acc,
			latency: p.latency,
			id:      p.id,
		})
		return
	}
	pos := order[idx]
	children := c.extendProbe(out, p, idx, pos, idx == 0)
	if p.id != 0 {
		// Close the parent's span: it survived its own hop and its
		// children (possibly zero) carry the walk on.
		c.env.Tracer.ProbeForwarded(req.ID, p.id, order[idx-1],
			c.env.Catalog.Component(sc.cur[order[idx-1]]).Node, len(children))
	}
	for i := range children {
		sc.cur[pos] = children[i].choice
		c.expand(out, order, idx+1, children[i])
	}
}

// holdComposition places aggregated transient holds covering exactly one
// composition's demands. It reports false if any hold cannot be placed
// (impossible within a single probing walk, but defended regardless).
func (c *Composer) holdComposition(comp *Composition) bool {
	w := &c.walk
	nodes, links := c.accumulateDemands(w.req, comp.Components, comp.Routes)
	for i, nd := range nodes {
		if !c.env.Ledger.HoldNode(w.owner, 0, nd.node, nd.amount, w.expires) {
			c.rollbackComposition(nodes[:i], nil)
			return false
		}
		c.env.Tracer.HoldAcquired(w.req.ID, 0, -1, nd.node)
	}
	for i, ld := range links {
		if !c.env.Ledger.HoldLink(w.owner, 0, ld.link, ld.bw, w.expires) {
			c.rollbackComposition(nodes, links[:i])
			return false
		}
	}
	return true
}

// rollbackComposition releases the aggregate holds holdComposition
// placed before one failed, so a failed placement leaves no residue on
// the ledger regardless of what the caller does next. (Previously a
// mid-sequence failure leaked every earlier hold until the caller's
// owner-level release — the same shape as the extendProbe partial-hold
// leak fixed in the allocation-free-walk change.)
func (c *Composer) rollbackComposition(nodes []nodeDemand, links []linkDemand) {
	w := &c.walk
	for _, nd := range nodes {
		c.env.Ledger.ReleaseNodeHold(w.owner, 0, nd.node)
	}
	for _, ld := range links {
		c.env.Ledger.ReleaseLinkHold(w.owner, 0, ld.link)
	}
}

// predecessorRoutes collects the virtual links from each already-assigned
// predecessor of pos to the candidate node, accumulating their QoS. The
// result slice is a shared scratch buffer: it is valid only until the
// next predecessorRoutes call, which every caller fully consumes first.
//
//acp:hotpath
func (c *Composer) predecessorRoutes(pos, candNode int) ([]overlay.Route, qos.Vector) {
	sc := &c.scratch
	routes := sc.predRoutes[:0]
	var linkQoS qos.Vector
	for _, pred := range sc.preds[pos] {
		from := c.env.Catalog.Component(sc.cur[pred]).Node
		r := c.route(from, candNode)
		routes = append(routes, r)
		linkQoS = linkQoS.Add(r.QoS)
	}
	sc.predRoutes = routes
	return routes, linkQoS
}

// extendProbe performs one hop of per-hop probe processing (§3.3 step 2)
// for probe p choosing a component for graph position pos: discover
// candidates, select which to probe, send child probes, apply the
// precise conformance check and transient allocation at each candidate,
// and return the surviving child probes (valid until the next
// extendProbe call at the same depth). isSource marks the graph's source
// position, whose probe hop starts from the deputy node.
//
//acp:hotpath
func (c *Composer) extendProbe(out *Outcome, p hopChild, depth, pos int, isSource bool) []hopChild {
	w := &c.walk
	sc := &c.scratch
	fn := w.req.Graph.Functions[pos]
	candidates := c.lookup(fn)
	if len(candidates) == 0 {
		return nil
	}
	selected := c.selectCandidates(p, pos, candidates)
	tr := c.env.Tracer

	for len(sc.children) <= depth {
		sc.children = append(sc.children, nil)
	}
	children := sc.children[depth][:0]
	for i, id := range selected {
		if w.budget <= 0 {
			if tr.Enabled() {
				for _, cut := range selected[i:] {
					tr.CandidatePruned(w.req.ID, 0, p.id, pos, c.env.Catalog.Component(cut).Node, obs.ReasonBudget)
				}
			}
			break
		}
		w.budget--
		// Sending the probe to the candidate costs one message whether
		// or not the candidate turns out to qualify. Optimal's full
		// exhaustive cost was charged up front in probeWalk.
		if c.cfg.Algorithm != AlgOptimal {
			c.env.Counters.AddProbes(1)
			out.ProbesSent++
		}

		cand := c.env.Catalog.Component(id)
		routes, linkQoS := c.predecessorRoutes(pos, cand.Node)
		acc := p.acc.Add(linkQoS).Add(cand.QoS)

		// The probe physically travels from the previous hop's node (the
		// deputy for the source position).
		travelFrom := w.req.Client
		if !isSource {
			travelFrom = c.env.Catalog.Component(sc.cur[sc.preds[pos][0]]).Node
		}
		latency := p.latency + c.route(travelFrom, cand.Node).QoS.Delay
		if latency > w.maxLatency {
			w.maxLatency = latency
		}

		var pid int64
		if tr.Enabled() {
			pid = tr.NextProbeID()
			tr.ProbeSpawned(w.req.ID, pid, pos, cand.Node, latency)
		}

		// Precise conformance check at the candidate's node: accumulated
		// QoS against the user requirement (Eq. 6), application-specific
		// constraints (security level, §6), and precise local resource
		// states (Eqs. 7-8). Unqualified probes are dropped immediately
		// to reduce probing overhead.
		if acc.MaxRatio(w.req.QoSReq) > 1 {
			tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		if cand.Security < w.req.MinSecurity {
			tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		if !c.env.Ledger.NodeAvailableFor(w.owner, cand.Node).Covers(w.req.ResReq[pos]) {
			tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonResources)
			continue
		}
		feasible := true
		for _, route := range routes {
			if c.env.Ledger.RouteAvailableFor(w.owner, route) < w.req.BandwidthReq {
				feasible = false
				break
			}
		}
		if !feasible {
			tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}

		// Transient resource allocation (§3.3 step 2): reserve once per
		// component (tag = position) and per virtual link hop. A probe
		// that cannot secure its allocation is dropped — and releases
		// exactly the holds it newly placed, so a loser's partial
		// reservation cannot squat on resources that later candidates of
		// the same request are raw-checked against. Holds created by
		// sibling probes (idempotent no-ops here) stay untouched.
		if c.cfg.TransientAllocation {
			okNode, createdNode := c.env.Ledger.HoldNodeTracked(w.owner, pos, cand.Node, w.req.ResReq[pos], w.expires)
			if !okNode {
				tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonHoldNode)
				continue
			}
			tr.HoldAcquired(w.req.ID, pid, pos, cand.Node)
			held := true
			sc.heldLinks = sc.heldLinks[:0]
			for _, route := range routes {
				for _, link := range route.Links {
					// Link holds are tagged by position so distinct
					// edges of the same request stack correctly.
					okLink, createdLink := c.env.Ledger.HoldLinkTracked(w.owner, pos, link, w.req.BandwidthReq, w.expires)
					if !okLink {
						held = false
						break
					}
					if createdLink {
						sc.heldLinks = append(sc.heldLinks, link)
					}
				}
				if !held {
					break
				}
			}
			if !held {
				if createdNode {
					c.env.Ledger.ReleaseNodeHold(w.owner, pos, cand.Node)
				}
				for _, link := range sc.heldLinks {
					c.env.Ledger.ReleaseLinkHold(w.owner, pos, link)
				}
				tr.CandidatePruned(w.req.ID, pid, p.id, pos, cand.Node, obs.ReasonHoldLink)
				continue
			}
		}

		children = append(children, hopChild{choice: id, acc: acc, latency: latency, id: pid})
	}
	sc.children[depth] = children
	return children
}

// selectCandidates picks the M = ceil(alpha*k) next-hop candidates to
// probe (§3.5). For Optimal every candidate is probed. For the guided
// policies the coarse global state prefilters unqualified candidates
// (Eqs. 6-8) and ranks survivors by the risk function D (Eq. 9) and the
// congestion function W (Eq. 10); SelectRandom (RP) picks uniformly
// without consulting the global state. The returned slice is scratch,
// valid until the next selectCandidates call.
//
//acp:hotpath
func (c *Composer) selectCandidates(p hopChild, pos int, candidates []component.ComponentID) []component.ComponentID {
	if c.cfg.Algorithm == AlgOptimal {
		return candidates
	}
	w := &c.walk
	sc := &c.scratch
	m := int(math.Ceil(c.cfg.ProbingRatio * float64(len(candidates))))
	if m < 1 {
		m = 1
	}

	tr := c.env.Tracer
	if c.cfg.Selection == SelectRandom {
		if m >= len(candidates) {
			return candidates
		}
		picked := append(sc.selected[:0], candidates...)
		//acp:alloc-ok Shuffle's swap closure does not escape: the compiler keeps it and picked on the stack
		c.env.Rand.Shuffle(len(picked), func(i, j int) { picked[i], picked[j] = picked[j], picked[i] })
		if tr.Enabled() {
			for _, cut := range picked[m:] {
				tr.CandidatePruned(w.req.ID, 0, p.id, pos, c.env.Catalog.Component(cut).Node, obs.ReasonRandomRank)
			}
		}
		sc.selected = picked
		return picked[:m]
	}

	qualified := sc.ranked[:0]
	for _, id := range candidates {
		cand := c.env.Catalog.Component(id)
		if cand.Security < w.req.MinSecurity {
			tr.CandidatePruned(w.req.ID, 0, p.id, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		routes, linkQoS := c.predecessorRoutes(pos, cand.Node)

		// Coarse-grain qualification (Eqs. 6-8) from the global state.
		acc := p.acc.Add(linkQoS).Add(cand.QoS)
		risk := acc.MaxRatio(w.req.QoSReq)
		if risk > 1 {
			tr.CandidatePruned(w.req.ID, 0, p.id, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		avail := c.env.Global.NodeAvailable(cand.Node)
		if !avail.Covers(w.req.ResReq[pos]) {
			tr.CandidatePruned(w.req.ID, 0, p.id, pos, cand.Node, obs.ReasonResources)
			continue
		}
		routeBW := math.Inf(1)
		for _, route := range routes {
			routeBW = math.Min(routeBW, c.env.Global.RouteAvailable(route))
		}
		if routeBW < w.req.BandwidthReq {
			tr.CandidatePruned(w.req.ID, 0, p.id, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}

		// Congestion function W (Eq. 10) on coarse residuals.
		cong := qos.CongestionTerm(w.req.ResReq[pos], avail.Sub(w.req.ResReq[pos])) +
			qos.BandwidthCongestionTerm(w.req.BandwidthReq, routeBW-w.req.BandwidthReq)
		qualified = append(qualified, rankedCand{id: id, node: cand.Node, risk: risk, cong: cong})
	}
	sc.ranked = qualified
	if len(qualified) <= m {
		out := sc.selected[:0]
		for i := range qualified {
			out = append(out, qualified[i].id)
		}
		sc.selected = out
		return out
	}

	// Stable insertion sort on the scratch buffer: candidate lists are a
	// handful of entries, and this matches sort.SliceStable's behaviour
	// at these sizes (which is insertion sort for short runs) without
	// its interface and closure allocations.
	for i := 1; i < len(qualified); i++ {
		for j := i; j > 0 && c.candLess(qualified[j].risk, qualified[j].cong, qualified[j-1].risk, qualified[j-1].cong); j-- {
			qualified[j], qualified[j-1] = qualified[j-1], qualified[j]
		}
	}
	if tr.Enabled() {
		for _, cut := range qualified[m:] {
			tr.CandidatePruned(w.req.ID, 0, p.id, pos, cut.node,
				rankCutReason(c.cfg.Selection, cut.risk, qualified[m-1].risk))
		}
	}
	out := sc.selected[:0]
	for i := 0; i < m; i++ {
		out = append(out, qualified[i].id)
	}
	sc.selected = out
	return out
}

// rankCutReason attributes a ranking cut to the risk function D or the
// congestion function W: a cut candidate whose risk differs from the last
// admitted one's by more than the 5% similarity band lost on risk; one
// inside the band was tie-broken by congestion.
func rankCutReason(sel SelectionPolicy, cutRisk, lastKeptRisk float64) obs.Reason {
	const band = 0.05
	switch sel {
	case SelectRiskOnly:
		return obs.ReasonRiskRank
	case SelectCongestionOnly:
		return obs.ReasonCongestionRank
	default:
		if math.Abs(cutRisk-lastKeptRisk) > band*math.Max(cutRisk, lastKeptRisk) {
			return obs.ReasonRiskRank
		}
		return obs.ReasonCongestionRank
	}
}

// candLess compares two ranked candidates under the configured selection
// policy. The paper compares risk values first and falls back to the
// congestion function when risks are similar; "similar" is a 5% relative
// band.
//
//acp:hotpath
func (c *Composer) candLess(ri, ci, rj, cj float64) bool {
	const band = 0.05
	switch c.cfg.Selection {
	case SelectRiskOnly:
		return ri < rj
	case SelectCongestionOnly:
		return ci < cj
	default: // SelectRiskThenCongestion
		if math.Abs(ri-rj) > band*math.Max(ri, rj) {
			return ri < rj
		}
		return ci < cj
	}
}

// rankLess returns the comparison for the configured selection policy as
// a standalone function (tests exercise the policy through this).
func (c *Composer) rankLess() func(ri, ci, rj, cj float64) bool {
	return c.candLess
}

// selectBest evaluates complete probes against the constraints
// (Eqs. 2-5) using precise probed state and returns the winner: the
// phi-minimal qualified composition for ACP/Optimal/RP, or a random
// qualified one for SP. It also reports how many probes qualified. The
// winner is deep-copied out of the evaluation scratch, so it stays valid
// across later walks.
func (c *Composer) selectBest(complete []probeState) (*Composition, int) {
	var (
		best      *Composition
		qualified int
	)
	for i := range complete {
		comp, ok := c.evaluate(complete[i].comps)
		if !ok {
			continue
		}
		qualified++
		take := false
		switch {
		case best == nil:
			take = true
		case c.cfg.Algorithm == AlgSP:
			// Reservoir-sample uniformly among qualified compositions.
			take = c.env.Rand.Intn(qualified) == 0
		case comp.Phi < best.Phi:
			take = true
		}
		if take {
			best = comp
			c.scratch.evalIdx ^= 1 // protect the winner from the next evaluate
		}
	}
	if best == nil {
		return nil, qualified
	}
	return &Composition{
		Components: append([]component.ComponentID(nil), best.Components...),
		Routes:     append([]overlay.Route(nil), best.Routes...),
		QoS:        best.QoS,
		Phi:        best.Phi,
	}, qualified
}

// evaluate builds the full composition for an assignment and checks the
// optimization constraints: function coverage is structural (Eq. 2), the
// aggregated QoS must satisfy the requirement (Eq. 3), and residual node
// resources and link bandwidths must stay non-negative (Eqs. 4-5)
// against the request's own-credited precise availability. The returned
// composition lives in the double-buffered evaluation scratch: it is
// valid until the buffer is flipped twice (selectBest flips on keep).
//
//acp:hotpath
func (c *Composer) evaluate(assign []component.ComponentID) (*Composition, bool) {
	req := c.walk.req
	sc := &c.scratch
	comp := &sc.evalBuf[sc.evalIdx]
	comp.Components = assign
	comp.Routes = comp.Routes[:0]
	comp.QoS = qos.Vector{}
	comp.Phi = 0
	for _, id := range assign {
		chosen := c.env.Catalog.Component(id)
		if chosen.Security < req.MinSecurity {
			return nil, false
		}
		comp.QoS = comp.QoS.Add(chosen.QoS)
	}
	for _, e := range req.Graph.Edges {
		from := c.env.Catalog.Component(assign[e.From]).Node
		to := c.env.Catalog.Component(assign[e.To]).Node
		route := c.route(from, to)
		comp.Routes = append(comp.Routes, route)
		comp.QoS = comp.QoS.Add(route.QoS)
	}
	if comp.QoS.MaxRatio(req.QoSReq) > 1 {
		return nil, false
	}

	nodes, links := c.accumulateDemands(req, assign, comp.Routes)
	owner := c.walk.owner
	for _, nd := range nodes {
		if !c.env.Ledger.NodeAvailableFor(owner, nd.node).Covers(nd.amount) {
			return nil, false
		}
	}
	for _, ld := range links {
		if c.env.Ledger.LinkAvailableFor(owner, ld.link) < ld.bw {
			return nil, false
		}
	}
	comp.Phi = c.phi(req, assign, comp.Routes, nodes, links)
	return comp, true
}

// accumulateDemands folds a composition into per-node resource and
// per-overlay-link bandwidth demand slices. Components of the same
// request sharing a node stack their requirements (footnote 5); virtual
// links sharing an overlay link stack their bandwidth; co-located
// virtual links consume nothing (footnote 4). The slices are scratch,
// valid until the next call; entries appear in first-seen order, which
// keeps every downstream float summation deterministic.
//
//acp:hotpath
func (c *Composer) accumulateDemands(req *component.Request, comps []component.ComponentID, routes []overlay.Route) ([]nodeDemand, []linkDemand) {
	sc := &c.scratch
	nodes := sc.nodeDemands[:0]
	for pos, id := range comps {
		node := c.env.Catalog.Component(id).Node
		found := false
		for i := range nodes {
			if nodes[i].node == node {
				nodes[i].amount = nodes[i].amount.Add(req.ResReq[pos])
				found = true
				break
			}
		}
		if !found {
			nodes = append(nodes, nodeDemand{node: node, amount: req.ResReq[pos]})
		}
	}
	links := sc.linkDemands[:0]
	for _, route := range routes {
		if route.CoLocated {
			continue
		}
		for _, link := range route.Links {
			found := false
			for i := range links {
				if links[i].link == link {
					links[i].bw += req.BandwidthReq
					found = true
					break
				}
			}
			if !found {
				links = append(links, linkDemand{link: link, bw: req.BandwidthReq})
			}
		}
	}
	sc.nodeDemands, sc.linkDemands = nodes, links
	return nodes, links
}

// phi computes the congestion aggregation metric (Eq. 1) for a candidate
// assignment against owner-credited precise availability: each component
// contributes sum_k r_k/(rr_k + r_k) with rr the node's residual after
// ALL of this request's placements there (footnote 5), and each virtual
// link contributes b/(rb + b) with rb the bottleneck residual bandwidth
// after this request's reservations (0 for co-located links, footnote 8).
//
// Under PhiSum the sum accumulates in the exact order above — the
// 50-seed golden parity test pins that float arithmetic bit-for-bit.
// The fairness variants only post-process: PhiWeighted scales the sum
// by the request's phi weight, PhiBottleneck returns the single worst
// term tracked alongside the sum.
//
//acp:hotpath
func (c *Composer) phi(req *component.Request, comps []component.ComponentID, routes []overlay.Route,
	nodes []nodeDemand, links []linkDemand) float64 {

	owner := state.Owner(req.ID)
	sc := &c.scratch
	residuals := sc.residuals[:0]
	for _, nd := range nodes {
		residuals = append(residuals, c.env.Ledger.NodeAvailableFor(owner, nd.node).Sub(nd.amount))
	}
	sc.residuals = residuals
	total, worst := 0.0, 0.0
	for pos, id := range comps {
		node := c.env.Catalog.Component(id).Node
		var residual qos.Resources
		for i := range nodes {
			if nodes[i].node == node {
				residual = residuals[i]
				break
			}
		}
		term := qos.CongestionTerm(req.ResReq[pos], residual)
		total += term
		worst = math.Max(worst, term)
	}
	for _, route := range routes {
		residual := math.Inf(1)
		if !route.CoLocated {
			for _, link := range route.Links {
				demand := 0.0
				for i := range links {
					if links[i].link == link {
						demand = links[i].bw
						break
					}
				}
				r := c.env.Ledger.LinkAvailableFor(owner, link) - demand
				residual = math.Min(residual, r)
			}
		}
		term := qos.BandwidthCongestionTerm(req.BandwidthReq, residual)
		total += term
		worst = math.Max(worst, term)
	}
	switch c.cfg.Phi {
	case PhiWeighted:
		return total * req.PhiWeight()
	case PhiBottleneck:
		return worst
	default:
		return total
	}
}

// probeDirect implements the Random and Static heuristics: choose one
// candidate per position outright, verify the composition with a single
// probe along it, and use it if qualified.
func (c *Composer) probeDirect(req *component.Request) (*Outcome, error) {
	c.beginWalk(req)
	w := &c.walk
	sc := &c.scratch
	out := &Outcome{Request: req}
	tr := c.env.Tracer
	tr.RequestReceived(req.ID, req.Client)

	n := req.Graph.NumPositions()
	assign := sc.cur
	for pos := 0; pos < n; pos++ {
		candidates := c.lookup(req.Graph.Functions[pos])
		if len(candidates) == 0 {
			tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
			return out, nil
		}
		switch c.cfg.Algorithm {
		case AlgRandom:
			assign[pos] = candidates[c.env.Rand.Intn(len(candidates))]
		default: // AlgStatic: a fixed choice per function
			assign[pos] = candidates[0]
		}
	}

	// One verification probe visits each chosen component in turn; each
	// hop is charged as one probe message.
	c.env.Counters.AddProbes(int64(n))
	out.ProbesSent = n
	prev := req.Client
	latency := 0.0
	var lastPid int64
	for pos, id := range assign {
		node := c.env.Catalog.Component(id).Node
		latency += c.route(prev, node).QoS.Delay
		prev = node
		if tr.Enabled() {
			pid := tr.NextProbeID()
			tr.ProbeSpawned(req.ID, pid, pos, node, latency)
			if pos < n-1 {
				tr.ProbeForwarded(req.ID, pid, pos, node, 1)
			} else {
				lastPid = pid
			}
		}
	}
	latency += c.route(prev, req.Client).QoS.Delay
	if lastPid != 0 {
		tr.ProbeReturned(req.ID, lastPid, prev, latency)
	}
	w.maxLatency = latency
	c.env.Counters.AddProbeReturns(1)
	out.PathsReturned = 1
	out.Latency = 2 * time.Duration(w.maxLatency*float64(time.Millisecond))

	scratchComp, ok := c.evaluate(assign)
	if !ok {
		tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
		return out, nil
	}
	// Copy the winner out of the evaluation scratch before returning it.
	comp := &Composition{
		Components: append([]component.ComponentID(nil), scratchComp.Components...),
		Routes:     append([]overlay.Route(nil), scratchComp.Routes...),
		QoS:        scratchComp.QoS,
		Phi:        scratchComp.Phi,
	}
	if c.cfg.TransientAllocation {
		// The verification probe transiently reserves what it visits so
		// the allocation survives until the confirmation arrives.
		for pos, id := range assign {
			node := c.env.Catalog.Component(id).Node
			if !c.env.Ledger.HoldNode(w.owner, pos, node, req.ResReq[pos], w.expires) {
				c.env.Ledger.ReleaseOwner(w.owner)
				tr.HoldReleased(req.ID, -1)
				tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
				return out, nil
			}
			tr.HoldAcquired(req.ID, 0, pos, node)
		}
		for i, route := range comp.Routes {
			for _, link := range route.Links {
				if !c.env.Ledger.HoldLink(w.owner, i, link, req.BandwidthReq, w.expires) {
					c.env.Ledger.ReleaseOwner(w.owner)
					tr.HoldReleased(req.ID, -1)
					tr.Decided(req.ID, req.Client, obs.ReasonNoComposition)
					return out, nil
				}
			}
		}
	}
	out.Qualified = 1
	out.Best = comp
	tr.Decided(req.ID, req.Client, "")
	return out, nil
}

// clampToInt narrows an int64 probe count to int without overflow. The
// accounting loop above clamps the per-position width, not the running
// total, so on 32-bit platforms the total can exceed MaxInt32 and a
// plain conversion would wrap negative.
func clampToInt(v int64) int {
	if v > math.MaxInt {
		return math.MaxInt
	}
	return int(v)
}
