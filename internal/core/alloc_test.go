package core

import (
	"math/rand"
	"testing"

	"repro/internal/component"
	"repro/internal/state"
)

// TestSelectCandidatesSteadyStateAllocations pins the per-hop candidate
// selection at zero allocations once the composer's scratch buffers are
// warm: the ranking, pruning, and shuffling all happen in reused slices.
func TestSelectCandidatesSteadyStateAllocations(t *testing.T) {
	env, _ := testEnv(t, 6)
	for _, cfg := range []Config{DefaultConfig(), func() Config {
		c := DefaultConfig()
		c.Algorithm = AlgRP
		c.Selection = SelectRandom
		return c
	}()} {
		c := mustComposer(t, env, cfg)
		req := easyRequest(1)
		c.beginWalk(req)
		cands := c.lookup(req.Graph.Functions[0])
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		run := func() { c.selectCandidates(hopChild{}, 0, cands) }
		run() // size the scratch buffers
		if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
			t.Errorf("%s selectCandidates allocates %.1f per call in steady state, want 0", cfg.Algorithm, allocs)
		}
		c.env.Ledger.ReleaseOwner(state.Owner(req.ID))
	}
}

// TestProbeHopSteadyStateAllocations pins one full probe hop — candidate
// selection, precise conformance checks, and transient hold placement —
// at zero steady-state allocations beyond the per-walk function lookup.
func TestProbeHopSteadyStateAllocations(t *testing.T) {
	env, _ := testEnv(t, 7)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	order, err := req.Graph.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	out := &Outcome{Request: req}
	run := func() {
		c.beginWalk(req)
		if children := c.extendProbe(out, hopChild{}, 0, order[0], true); len(children) == 0 {
			t.Fatal("source hop produced no children")
		}
		c.env.Ledger.ReleaseOwner(state.Owner(req.ID))
	}
	run() // size the scratch buffers, ledger hold slots, lookup cache
	// The per-epoch discovery lookup may allocate (it returns the
	// catalog's slice today, but the registry is allowed to filter);
	// everything else must come from scratch.
	const maxAllocs = 2
	if allocs := testing.AllocsPerRun(100, run); allocs > maxAllocs {
		t.Errorf("probe hop allocates %.1f per call in steady state, want <= %d", allocs, maxAllocs)
	}
}

// TestProbeSteadyStateAllocations bounds a whole probe walk. A walk
// cannot be literally allocation-free (the Outcome, the winning
// composition's deep copy, and the per-request graph traversal remain),
// but the former per-child prefix copies and per-walk maps are gone; the
// old implementation spent thousands of allocations per walk on this
// workload.
func TestProbeSteadyStateAllocations(t *testing.T) {
	env, _ := testEnv(t, 8)
	c := mustComposer(t, env, DefaultConfig())
	reqRng := rand.New(rand.NewSource(42))
	reqs := make([]*component.Request, 8)
	for i := range reqs {
		reqs[i] = randomRequest(reqRng, int64(i+1), 10, env.Mesh.NumNodes())
	}
	probeAll := func() {
		for _, req := range reqs {
			if _, err := c.Probe(req); err != nil {
				t.Fatal(err)
			}
			c.Abort(req.ID)
		}
	}
	probeAll() // size the scratch buffers
	const maxAllocsPerProbe = 40
	allocs := testing.AllocsPerRun(5, probeAll) / float64(len(reqs))
	if allocs > maxAllocsPerProbe {
		t.Errorf("probe walk allocates %.1f per request in steady state, want <= %d", allocs, maxAllocsPerProbe)
	}
}
