package core

import (
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
)

// crossNodePair finds one candidate per function 0 and 1 placed on
// distinct overlay nodes, so a two-position composition demands
// resources on two separate nodes.
func crossNodePair(t *testing.T, env Env) (c0, c1 component.ComponentID) {
	t.Helper()
	for _, a := range env.Catalog.Candidates(0) {
		for _, b := range env.Catalog.Candidates(1) {
			if env.Catalog.Component(a).Node != env.Catalog.Component(b).Node {
				return a, b
			}
		}
	}
	t.Fatal("no cross-node candidate pair in test catalog")
	return 0, 0
}

// TestHoldCompositionRollsBackPartialHolds is the regression for the
// partial-hold leak in holdComposition: when a mid-sequence HoldNode or
// HoldLink fails, every hold placed earlier in the same call must be
// released before reporting failure. Previously those holds leaked
// until the caller's owner-level release — the same shape as the
// extendProbe leak, and exactly what the acpholdpair analyzer flags.
func TestHoldCompositionRollsBackPartialHolds(t *testing.T) {
	t.Run("node hold fails", func(t *testing.T) {
		env, _ := testEnv(t, 7)
		c := mustComposer(t, env, DefaultConfig())
		c0, c1 := crossNodePair(t, env)
		n0 := env.Catalog.Component(c0).Node
		n1 := env.Catalog.Component(c1).Node

		// The first position fits; the second demands five times the
		// node capacity, so its HoldNode must fail after n0 is held.
		req := &component.Request{
			ID:     41,
			Graph:  component.NewPathGraph([]component.FunctionID{0, 1}),
			QoSReq: qos.Vector{Delay: 1e6, LossCost: qos.LossCost(0.9)},
			ResReq: []qos.Resources{
				{CPU: 10, Memory: 100},
				{CPU: 500, Memory: 100},
			},
			BandwidthReq: 10,
			Client:       0,
			Duration:     time.Minute,
		}
		c.walk = walkState{req: req, owner: state.Owner(req.ID), expires: env.Now() + time.Minute}

		before0 := env.Ledger.NodeAvailable(n0)
		before1 := env.Ledger.NodeAvailable(n1)
		comp := &Composition{Components: []component.ComponentID{c0, c1}}
		if c.holdComposition(comp) {
			t.Fatal("holdComposition succeeded despite oversized second demand")
		}
		if got := env.Ledger.NodeAvailable(n0); got != before0 {
			t.Errorf("node %d availability %+v after failed holdComposition, want %+v (hold leaked)",
				n0, got, before0)
		}
		if got := env.Ledger.NodeAvailable(n1); got != before1 {
			t.Errorf("node %d availability %+v after failed holdComposition, want %+v",
				n1, got, before1)
		}
		if err := env.Ledger.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("link hold fails", func(t *testing.T) {
		env, _ := testEnv(t, 7)
		c := mustComposer(t, env, DefaultConfig())
		c0, c1 := crossNodePair(t, env)
		n0 := env.Catalog.Component(c0).Node
		n1 := env.Catalog.Component(c1).Node

		// Both node demands fit, but the bandwidth demand exceeds any
		// link's capacity, so the first HoldLink fails after BOTH node
		// holds are placed.
		req := &component.Request{
			ID:     43,
			Graph:  component.NewPathGraph([]component.FunctionID{0, 1}),
			QoSReq: qos.Vector{Delay: 1e6, LossCost: qos.LossCost(0.9)},
			ResReq: []qos.Resources{
				{CPU: 10, Memory: 100},
				{CPU: 10, Memory: 100},
			},
			BandwidthReq: 1e9,
			Client:       0,
			Duration:     time.Minute,
		}
		c.walk = walkState{req: req, owner: state.Owner(req.ID), expires: env.Now() + time.Minute}

		rt := c.route(n0, n1)
		if rt.CoLocated || len(rt.Links) == 0 {
			t.Fatalf("route %d->%d has no links to contend on", n0, n1)
		}
		before0 := env.Ledger.NodeAvailable(n0)
		before1 := env.Ledger.NodeAvailable(n1)
		beforeLink := env.Ledger.LinkAvailable(rt.Links[0])

		comp := &Composition{
			Components: []component.ComponentID{c0, c1},
			Routes:     []overlay.Route{rt},
		}
		if c.holdComposition(comp) {
			t.Fatal("holdComposition succeeded despite oversized bandwidth demand")
		}
		if got := env.Ledger.NodeAvailable(n0); got != before0 {
			t.Errorf("node %d availability %+v after failed holdComposition, want %+v (hold leaked)",
				n0, got, before0)
		}
		if got := env.Ledger.NodeAvailable(n1); got != before1 {
			t.Errorf("node %d availability %+v after failed holdComposition, want %+v (hold leaked)",
				n1, got, before1)
		}
		if got := env.Ledger.LinkAvailable(rt.Links[0]); got != beforeLink {
			t.Errorf("link %d availability %v after failed holdComposition, want %v",
				rt.Links[0], got, beforeLink)
		}
		if err := env.Ledger.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
