package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
	"repro/internal/topology"
)

// TestLeakedHoldNoLongerStarvesLaterPositions stages the extendProbe
// partial-hold failure end to end. A four-position path request is
// shaped so that at position 2 every candidate on node n0 acquires its
// node hold but then fails a link hold (the route back to n0 re-crosses
// links already held for position 1, and a foreign session has eaten the
// slack), while one candidate on a link-disjoint node nD survives. The
// position-3 candidates all live on n0 and need more capacity than n0
// has once a leaked position-2 hold squats on it: before the fix the
// loser's node hold was never rolled back, the position-3 raw
// availability check failed, and the whole request was rejected even
// though a qualified composition exists.
func TestLeakedHoldNoLongerStarvesLaterPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 200
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = 20
	mesh, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		t.Fatal(err)
	}

	// nA: any node whose route from n0 crosses at least one link. Those
	// links are the ones position 1 will hold bandwidth on.
	const n0 = 0
	nA := -1
	var poisonLinks []int
	for v := 1; v < mesh.NumNodes(); v++ {
		if r, ok := mesh.RouteBetween(n0, v); ok && !r.CoLocated && len(r.Links) > 0 {
			nA, poisonLinks = v, r.Links
			break
		}
	}
	if nA < 0 {
		t.Fatal("mesh has no routed neighbor for node 0")
	}
	poisoned := make(map[int]bool, len(poisonLinks))
	minCap := math.Inf(1)
	for _, l := range poisonLinks {
		poisoned[l] = true
		if c := mesh.Link(l).Capacity; c < minCap {
			minCap = c
		}
	}
	bw := minCap / 2

	// nD: reachable from nA and n0 over links disjoint from the poisoned
	// route, with capacity for one more bandwidth share.
	nD := -1
	for v := 1; v < mesh.NumNodes() && nD < 0; v++ {
		if v == nA {
			continue
		}
		r1, ok1 := mesh.RouteBetween(nA, v)
		r2, ok2 := mesh.RouteBetween(v, n0)
		if !ok1 || !ok2 {
			continue
		}
		ok := true
		for _, l := range append(append([]int(nil), r1.Links...), r2.Links...) {
			if poisoned[l] || mesh.Link(l).Capacity < bw {
				ok = false
				break
			}
		}
		if ok {
			nD = v
		}
	}
	if nD < 0 {
		t.Fatal("mesh has no link-disjoint detour node")
	}

	// Four functions; pin every candidate: F0 and F3 on n0, F1 on nA,
	// F2 split between n0 (doomed) and nD (the detour that must win).
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = 4
	pcfg.ComponentsPerNode = 1
	cat, err := component.Place(mesh.NumNodes(), pcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Candidates(2)) < 2 {
		t.Fatal("seed produced fewer than two position-2 candidates")
	}
	move := func(f component.FunctionID, node int) {
		for _, id := range cat.Candidates(f) {
			if err := cat.Move(id, node); err != nil {
				t.Fatal(err)
			}
		}
	}
	move(0, n0)
	move(1, nA)
	move(2, n0)
	if err := cat.Move(cat.Candidates(2)[0], nD); err != nil {
		t.Fatal(err)
	}
	move(3, n0)

	clk := &testClock{}
	counters := &metrics.Counters{}
	ledger := state.NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now)

	// A foreign session leaves exactly 1.5 shares of raw capacity on the
	// poisoned links: position 1's hold fits (1.5 -> 0.5 shares left),
	// but a position-2 re-crossing cannot hold another full share. The
	// credited precheck still passes (it credits the position-1 hold),
	// so the failure surfaces inside the hold sequence — after the node
	// hold succeeded. That is the leak site.
	foreign := make(map[int]float64, len(poisonLinks))
	for _, l := range poisonLinks {
		foreign[l] = mesh.Link(l).Capacity - 1.5*bw
	}
	if err := ledger.CommitSession(999, nil, foreign); err != nil {
		t.Fatal(err)
	}

	global, err := state.NewGlobal(ledger, mesh, state.DefaultGlobalConfig(), counters)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.MemorySink{}
	env := Env{
		Mesh:     mesh,
		Catalog:  cat,
		Registry: discovery.NewRegistry(cat, mesh.NumNodes(), counters),
		Ledger:   ledger,
		Global:   global,
		Counters: counters,
		Now:      clk.Now,
		Rand:     rng,
		Tracer:   obs.New(sink),
	}
	cfg := DefaultConfig()
	cfg.ProbingRatio = 1.0
	c := mustComposer(t, env, cfg)

	// Positions 0+3 together need 10+50 CPU on n0: fine with 100 — but
	// not if a leaked position-2 hold (50 CPU) still squats there.
	req := &component.Request{
		ID:           1,
		Graph:        component.NewPathGraph([]component.FunctionID{0, 1, 2, 3}),
		QoSReq:       qos.Vector{Delay: 1e12, LossCost: 1e12},
		ResReq:       []qos.Resources{{CPU: 10, Memory: 100}, {CPU: 10, Memory: 100}, {CPU: 50, Memory: 500}, {CPU: 50, Memory: 500}},
		BandwidthReq: bw,
		Client:       n0,
		Duration:     10 * time.Minute,
	}
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}

	// The failure path must actually have run: at least one candidate
	// pruned at the link-hold step (after its node hold was placed).
	holdLinkPrunes := 0
	for _, e := range sink.Events() {
		if e.Type == obs.EventCandidatePruned && e.Reason == obs.ReasonHoldLink {
			holdLinkPrunes++
		}
	}
	if holdLinkPrunes == 0 {
		t.Fatal("scenario did not exercise the partial-hold failure path")
	}

	if !out.Success() {
		t.Fatal("request starved: leaked position-2 hold blocked the position-3 candidate on the same node")
	}
	if node := cat.Component(out.Best.Components[2]).Node; node != nD {
		t.Errorf("position 2 chose node %d, want detour node %d", node, nD)
	}
	if node := cat.Component(out.Best.Components[3]).Node; node != n0 {
		t.Errorf("position 3 chose node %d, want %d", node, n0)
	}
	if err := ledger.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
