package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

// randomRequest draws a request over the test environment's functions
// with moderately tight but usually feasible requirements.
func randomRequest(rng *rand.Rand, id int64, numFunctions, numNodes int) *component.Request {
	n := 2 + rng.Intn(3)
	perm := rng.Perm(numFunctions)[:n]
	fns := make([]component.FunctionID, n)
	for i, f := range perm {
		fns[i] = component.FunctionID(f)
	}
	req := &component.Request{
		ID:    id,
		Graph: component.NewPathGraph(fns),
		QoSReq: qos.Vector{
			Delay:    200 + rng.Float64()*600,
			LossCost: qos.LossCost(0.02 + rng.Float64()*0.1),
		},
		ResReq:       make([]qos.Resources, n),
		BandwidthReq: 50 + rng.Float64()*300,
		Client:       rng.Intn(numNodes),
		Duration:     time.Minute,
	}
	for i := range req.ResReq {
		req.ResReq[i] = qos.Resources{
			CPU:    3 + rng.Float64()*15,
			Memory: 20 + rng.Float64()*120,
		}
	}
	return req
}

// TestPropertyComposedRequestsAreSound: for random requests, any
// successful composition must satisfy all four optimization constraints
// (Eqs. 2-5), and after commit+release the ledger returns to its
// starting state.
func TestPropertyComposedRequestsAreSound(t *testing.T) {
	env, _ := testEnv(t, 31)
	c := mustComposer(t, env, DefaultConfig())
	rng := rand.New(rand.NewSource(99))

	f := func(seed int64) bool {
		req := randomRequest(rng, 1000+seed%1000+rng.Int63n(1<<40), env.Catalog.NumFunctions(), env.Mesh.NumNodes())
		out, err := c.Probe(req)
		if err != nil {
			t.Logf("probe error: %v", err)
			return false
		}
		if !out.Success() {
			return true // infeasible requests may fail; nothing to check
		}
		comp := out.Best
		// Eq. 2: function coverage.
		for pos, id := range comp.Components {
			if env.Catalog.Component(id).Function != req.Graph.Functions[pos] {
				t.Log("function mismatch")
				return false
			}
		}
		// Eq. 3: QoS within requirement.
		if !comp.QoS.Within(req.QoSReq) {
			t.Logf("QoS %v violates %v", comp.QoS, req.QoSReq)
			return false
		}
		// phi is positive and finite for feasible compositions.
		if comp.Phi <= 0 || math.IsInf(comp.Phi, 1) || math.IsNaN(comp.Phi) {
			t.Logf("phi = %v", comp.Phi)
			return false
		}
		// Eqs. 4-5 via the ledger: commit must succeed right after a
		// successful probe (residuals non-negative).
		if err := c.Commit(out); err != nil {
			t.Logf("commit failed: %v", err)
			return false
		}
		c.Release(req.ID)
		// Conservation: everything restored.
		for n := 0; n < env.Ledger.NumNodes(); n++ {
			if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
				t.Logf("node %d not restored: %v", n, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyACPNeverOutperformsOptimalPhi: on a quiet system, Optimal's
// phi is a lower bound over every algorithm's choice for the same
// request.
func TestPropertyACPNeverOutperformsOptimalPhi(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		env, _ := testEnv(t, 32)
		req := randomRequest(rng, 1, env.Catalog.NumFunctions(), env.Mesh.NumNodes())

		phi := make(map[Algorithm]float64)
		for _, alg := range []Algorithm{AlgOptimal, AlgACP, AlgRP} {
			cfg := DefaultConfig()
			cfg.Algorithm = alg
			c := mustComposer(t, env, cfg)
			out, err := c.Probe(req)
			if err != nil {
				return false
			}
			if out.Success() {
				phi[alg] = out.Best.Phi
			} else {
				phi[alg] = math.Inf(1)
			}
			c.Abort(req.ID)
		}
		const eps = 1e-9
		return phi[AlgOptimal] <= phi[AlgACP]+eps && phi[AlgOptimal] <= phi[AlgRP]+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyProbeCountMonotoneInRatio: more probing never sends fewer
// probes on a fresh system.
func TestPropertyProbeCountMonotoneInRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(a, b uint8) bool {
		lo := 0.05 + float64(a%90)/100
		hi := lo + float64(b%20+1)/100
		if hi > 1 {
			hi = 1
		}
		env, _ := testEnv(t, 33)
		req := randomRequest(rng, 1, env.Catalog.NumFunctions(), env.Mesh.NumNodes())

		probes := func(alpha float64) int {
			cfg := DefaultConfig()
			cfg.ProbingRatio = alpha
			c := mustComposer(t, env, cfg)
			out, err := c.Probe(req)
			if err != nil {
				return -1
			}
			c.Abort(req.ID)
			return out.ProbesSent
		}
		pLo := probes(lo)
		pHi := probes(hi)
		return pLo >= 0 && pHi >= pLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFailureReleasesEverything: failed probes must leave no
// trace in the ledger regardless of request shape.
func TestPropertyFailureReleasesEverything(t *testing.T) {
	env, _ := testEnv(t, 34)
	c := mustComposer(t, env, DefaultConfig())
	rng := rand.New(rand.NewSource(5))

	f := func(seed int64) bool {
		req := randomRequest(rng, 5000+rng.Int63n(1<<40), env.Catalog.NumFunctions(), env.Mesh.NumNodes())
		// Make it infeasible half the time via absurd bandwidth.
		if rng.Intn(2) == 0 {
			req.BandwidthReq = 1e12
		}
		out, err := c.Probe(req)
		if err != nil {
			return false
		}
		if out.Success() {
			c.Abort(req.ID)
		}
		for n := 0; n < env.Ledger.NumNodes(); n++ {
			if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
				return false
			}
		}
		for l := 0; l < env.Ledger.NumLinks(); l++ {
			if env.Ledger.LinkAvailable(l) != env.Ledger.LinkCapacity(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySecurityConstraintRespected: compositions for secure
// requests never include components below the demanded level.
func TestPropertySecurityConstraintRespected(t *testing.T) {
	env, _ := testEnv(t, 35)
	c := mustComposer(t, env, DefaultConfig())
	rng := rand.New(rand.NewSource(3))

	f := func(seed int64) bool {
		req := randomRequest(rng, 9000+rng.Int63n(1<<40), env.Catalog.NumFunctions(), env.Mesh.NumNodes())
		req.MinSecurity = 1 + rng.Intn(3)
		out, err := c.Probe(req)
		if err != nil {
			return false
		}
		if !out.Success() {
			return true
		}
		defer c.Abort(req.ID)
		for _, id := range out.Best.Components {
			if env.Catalog.Component(id).Security < req.MinSecurity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
