// Package core implements the paper's primary contribution: the adaptive
// composition probing (ACP) protocol for optimal component composition
// (§3), plus the five comparison algorithms of the evaluation (§4.1):
// exhaustive Optimal, selective probing (SP), random probing (RP), and
// the Random and Static heuristics.
//
// The composer separates probing from committing. Probe runs the
// distributed hop-by-hop protocol of Figure 3 — dropping unqualified
// probes, performing transient resource allocation, selecting good
// next-hop candidates under coarse-grain global state guidance, and
// finally choosing the composition minimizing the congestion aggregation
// metric phi (Eq. 1). Commit then makes the transient allocations
// permanent via session confirmation (§3.3 step 4). The gap between the
// two is the probing round-trip latency, during which the transient
// allocations shield the chosen resources from concurrent requests.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
)

// Algorithm selects the composition algorithm (§4.1).
type Algorithm int

// The six algorithms of the paper's evaluation.
const (
	// AlgACP is adaptive composition probing: global-state-guided per-hop
	// candidate selection, phi-optimal final selection.
	AlgACP Algorithm = iota + 1
	// AlgOptimal exhaustively probes every candidate at every hop and
	// picks the phi-optimal qualified composition. Exponential overhead.
	AlgOptimal
	// AlgSP (selective probing) keeps ACP's per-hop selection but picks a
	// random qualified composition instead of the phi-optimal one.
	AlgSP
	// AlgRP (random probing) selects next-hop candidates uniformly at
	// random without consulting the global state, then picks the
	// phi-optimal composition — the fully decentralized baseline.
	AlgRP
	// AlgRandom picks one random candidate per function outright.
	AlgRandom
	// AlgStatic always picks a fixed candidate per function.
	AlgStatic
)

// String names the algorithm as the paper's figure legends do.
func (a Algorithm) String() string {
	switch a {
	case AlgACP:
		return "ACP"
	case AlgOptimal:
		return "Optimal"
	case AlgSP:
		return "SP"
	case AlgRP:
		return "RP"
	case AlgRandom:
		return "Random"
	case AlgStatic:
		return "Static"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SelectionPolicy is the per-hop candidate ranking used by probing
// algorithms. The paper's ACP ranks by the risk function D (Eq. 9)
// breaking ties with the congestion function W (Eq. 10); the other
// policies exist for the ablation benchmarks.
type SelectionPolicy int

// Per-hop candidate selection policies.
const (
	// SelectRiskThenCongestion is the paper's §3.5 rule.
	SelectRiskThenCongestion SelectionPolicy = iota + 1
	// SelectRiskOnly ranks by D alone.
	SelectRiskOnly
	// SelectCongestionOnly ranks by W alone.
	SelectCongestionOnly
	// SelectRandom picks uniformly at random (used by RP).
	SelectRandom
)

// PhiMode selects the objective a composition is scored with. The
// paper's Eq. 1 sums congestion terms; the variants support fairness
// objectives for concurrent multi-application clusters ("Resource
// Allocation for Multiple Concurrent In-Network Stream-Processing
// Applications", PAPERS.md).
type PhiMode int

// Phi objectives.
const (
	// PhiSum is Eq. 1: the sum of node and link congestion terms.
	// The zero value, so existing configs keep the paper's objective.
	PhiSum PhiMode = iota
	// PhiWeighted scales the Eq. 1 sum by the request's phi weight
	// (component.Request.PhiWeight): a higher-priority tenant sees its
	// congestion magnified, so it claims less-loaded placements first
	// and its admission-time requiredPhi bound is proportionally
	// tighter.
	PhiWeighted
	// PhiBottleneck scores a composition by its single worst
	// congestion term instead of the sum — minimising the maximum is
	// the classic max-min fairness surrogate, spreading competing
	// tenants away from shared hot spots.
	PhiBottleneck
)

// String names the mode as configs and reports spell it.
func (m PhiMode) String() string {
	switch m {
	case PhiSum:
		return "sum"
	case PhiWeighted:
		return "weighted"
	case PhiBottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("PhiMode(%d)", int(m))
	}
}

// Env bundles the substrate a composer operates on.
type Env struct {
	Mesh     *overlay.Mesh
	Catalog  *component.Catalog
	Registry *discovery.Registry
	Ledger   *state.Ledger
	Global   *state.Global
	Counters *metrics.Counters
	// Now supplies virtual time for transient-allocation expiry.
	Now func() time.Duration
	// Rand drives the random selections of SP/RP/Random and tie
	// shuffling.
	Rand *rand.Rand
	// Tracer, when non-nil, receives probe-lifecycle events (spawns,
	// prunes, holds, returns, commits). nil disables tracing; the probe
	// hot path then pays only a pointer check.
	Tracer *obs.Tracer
	// Obs, when non-nil, receives the composer's latency instruments
	// (probe-walk round trip, probes per request). nil disables them at
	// the cost of a pointer check per observation.
	Obs *obs.Registry
}

func (e *Env) validate() error {
	switch {
	case e.Mesh == nil:
		return fmt.Errorf("core: Env.Mesh is nil")
	case e.Catalog == nil:
		return fmt.Errorf("core: Env.Catalog is nil")
	case e.Registry == nil:
		return fmt.Errorf("core: Env.Registry is nil")
	case e.Ledger == nil:
		return fmt.Errorf("core: Env.Ledger is nil")
	case e.Global == nil:
		return fmt.Errorf("core: Env.Global is nil")
	case e.Now == nil:
		return fmt.Errorf("core: Env.Now is nil")
	case e.Rand == nil:
		return fmt.Errorf("core: Env.Rand is nil")
	}
	return nil
}

// Config tunes the composer.
type Config struct {
	// Algorithm selects the composition strategy.
	Algorithm Algorithm
	// ProbingRatio is alpha in (0, 1]: the fraction of a function's
	// candidates probed per hop (§3.4). Ignored by Optimal (always 1),
	// Random, and Static.
	ProbingRatio float64
	// HoldTTL is the transient resource allocation timeout: holds placed
	// by probes expire after this long unless confirmed (§3.3 step 2).
	HoldTTL time.Duration
	// TransientAllocation toggles transient holds; disabling it is the
	// over-admission ablation.
	TransientAllocation bool
	// Selection is the per-hop candidate ranking policy. Zero value
	// means the algorithm's natural policy (ACP/Optimal/SP: risk then
	// congestion; RP: random).
	Selection SelectionPolicy
	// MaxProbesPerRequest caps probe fan-out per request as a safety
	// valve for Optimal's exponential search. Zero means the default.
	MaxProbesPerRequest int
	// Phi selects the composition objective. The zero value PhiSum is
	// the paper's Eq. 1; the variants support multi-tenant fairness.
	Phi PhiMode
}

// DefaultConfig returns an ACP composer configuration with the paper's
// mid-range probing ratio.
func DefaultConfig() Config {
	return Config{
		Algorithm:           AlgACP,
		ProbingRatio:        0.3,
		HoldTTL:             10 * time.Second,
		TransientAllocation: true,
		MaxProbesPerRequest: 200_000,
	}
}

// Composition is a concrete component graph lambda = (C, L): one
// component per function-graph position plus the virtual link route per
// dependency edge.
type Composition struct {
	// Components holds the chosen component per graph position.
	Components []component.ComponentID
	// Routes holds the virtual link per graph edge, parallel to
	// Request.Graph.Edges.
	Routes []overlay.Route
	// QoS is the aggregated end-to-end QoS over all components and
	// virtual links (Eq. 3's left-hand side).
	QoS qos.Vector
	// Phi is the congestion aggregation metric (Eq. 1) at decision time.
	Phi float64
}

// Outcome is the result of probing one request.
type Outcome struct {
	// Request is the composed request.
	Request *component.Request
	// Best is the chosen composition, nil when none qualified.
	Best *Composition
	// Latency estimates the probing round trip: the deepest probe path's
	// one-way delay, doubled.
	Latency time.Duration
	// ProbesSent and PathsReturned describe the probe tree.
	ProbesSent    int
	PathsReturned int
	// Qualified is the number of distinct qualified compositions the
	// deputy evaluated.
	Qualified int
}

// Success reports whether a composition was found.
func (o *Outcome) Success() bool { return o.Best != nil }

// Composer runs composition for one algorithm configuration.
//
// A Composer is NOT safe for concurrent use: the probe walk reuses
// composer-lifetime scratch buffers (route cache, candidate cache,
// ranking and demand accumulators) to stay allocation-free in steady
// state. Concurrent drivers must build one composer per worker over the
// shared environment and enable locking on the ledger and global state.
type Composer struct {
	env Env
	cfg Config

	walk    walkState
	scratch walkScratch

	// walkRtt and walkProbes are resolved once from Env.Obs (nil, and
	// therefore no-op, when observability is off).
	walkRtt    *obs.QHistogram
	walkProbes *obs.QHistogram
}

// NewComposer validates the environment and configuration.
func NewComposer(env Env, cfg Config) (*Composer, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if env.Counters == nil {
		env.Counters = &metrics.Counters{}
	}
	switch cfg.Algorithm {
	case AlgACP, AlgOptimal, AlgSP, AlgRP, AlgRandom, AlgStatic:
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", cfg.Algorithm)
	}
	if cfg.Algorithm != AlgOptimal && cfg.Algorithm != AlgRandom && cfg.Algorithm != AlgStatic {
		if cfg.ProbingRatio <= 0 || cfg.ProbingRatio > 1 {
			return nil, fmt.Errorf("core: probing ratio %v out of (0, 1]", cfg.ProbingRatio)
		}
	}
	if cfg.HoldTTL <= 0 {
		return nil, fmt.Errorf("core: HoldTTL %v <= 0", cfg.HoldTTL)
	}
	if cfg.MaxProbesPerRequest == 0 {
		cfg.MaxProbesPerRequest = DefaultConfig().MaxProbesPerRequest
	}
	if cfg.MaxProbesPerRequest < 0 {
		return nil, fmt.Errorf("core: MaxProbesPerRequest %d < 0", cfg.MaxProbesPerRequest)
	}
	if cfg.Phi < PhiSum || cfg.Phi > PhiBottleneck {
		return nil, fmt.Errorf("core: unknown phi mode %d", int(cfg.Phi))
	}
	if cfg.Selection == 0 {
		if cfg.Algorithm == AlgRP {
			cfg.Selection = SelectRandom
		} else {
			cfg.Selection = SelectRiskThenCongestion
		}
	}
	c := &Composer{env: env, cfg: cfg}
	c.scratch = newWalkScratch(&c.env)
	c.walkRtt = env.Obs.QHistogram("core.walk.rtt_ms")
	c.walkProbes = env.Obs.QHistogram("core.walk.probes")
	return c, nil
}

// Config returns the composer's effective configuration.
func (c *Composer) Config() Config { return c.cfg }

// Algorithm returns the composer's algorithm.
func (c *Composer) Algorithm() Algorithm { return c.cfg.Algorithm }

// SetProbingRatio adjusts alpha; the probing-ratio tuner calls this as
// system conditions change (§3.4).
func (c *Composer) SetProbingRatio(alpha float64) error {
	if alpha <= 0 || alpha > 1 {
		return fmt.Errorf("core: probing ratio %v out of (0, 1]", alpha)
	}
	c.cfg.ProbingRatio = alpha
	return nil
}

// ProbingRatio returns the current alpha.
func (c *Composer) ProbingRatio() float64 { return c.cfg.ProbingRatio }

// Probe runs the composition protocol for one request and returns the
// decision. On success the winning composition's resources are covered by
// transient holds (when enabled) awaiting Commit; on failure all of the
// request's holds have been released.
func (c *Composer) Probe(req *component.Request) (*Outcome, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Client < 0 || req.Client >= c.env.Mesh.NumNodes() {
		return nil, fmt.Errorf("core: request %d client %d out of range", req.ID, req.Client)
	}
	var (
		out *Outcome
		err error
	)
	switch c.cfg.Algorithm {
	case AlgRandom, AlgStatic:
		out, err = c.probeDirect(req)
	default:
		out, err = c.probeWalk(req)
	}
	if err == nil && out != nil {
		c.walkRtt.Observe(float64(out.Latency) / float64(time.Millisecond))
		c.walkProbes.Observe(float64(out.ProbesSent))
	}
	return out, err
}

// Commit makes a successful outcome's composition permanent: transient
// holds become a session allocation and confirmation messages are
// charged (§3.3 step 4). The session is registered under the request ID;
// release it with Release when the application closes.
func (c *Composer) Commit(o *Outcome) error {
	if o == nil || o.Best == nil {
		return fmt.Errorf("core: commit of unsuccessful outcome")
	}
	nodes, links := c.demands(o.Request, o.Best)
	if err := c.env.Ledger.CommitSession(state.Owner(o.Request.ID), nodes, links); err != nil {
		c.env.Tracer.RolledBack(o.Request.ID, o.Request.Client, obs.ReasonCommitNack)
		return fmt.Errorf("request %d: %w", o.Request.ID, err)
	}
	c.env.Counters.AddConfirmations(int64(len(o.Best.Components)))
	c.env.Tracer.Committed(o.Request.ID, o.Request.Client)
	return nil
}

// ProbeRecompose probes req as a make-before-break re-composition of
// the committed session prev: for the duration of the probe, the ledger
// credits prev's committed allocation back into req's availability
// views, hold feasibility, and phi scoring — the footnote-8 own-demand
// discipline applied to live state — so candidates overlapping the old
// composition qualify as if the session's own resources were free for
// reuse, while concurrent requests still see them as committed. On
// success the winning composition is covered by req's transient holds
// and the migration window stays open: finish with CommitMigration or
// AbortRecompose. On error, or when no composition qualified, the
// window is closed and every hold has been released.
func (c *Composer) ProbeRecompose(req *component.Request, prev int64) (*Outcome, error) {
	if err := c.env.Ledger.BeginMigration(state.Owner(req.ID), state.Owner(prev)); err != nil {
		return nil, err
	}
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		c.env.Ledger.EndMigration(state.Owner(req.ID))
	}
	return out, err
}

// CommitMigration atomically flips the committed session prev to a
// successful ProbeRecompose outcome: the probe's transient holds are
// released, the old allocation is swapped for the new composition's
// demands (now registered under the outcome's request ID), and the
// migration window closes. The session stays committed at every
// observable point — make-before-break. On failure the window and the
// holds survive, so the caller can retry or AbortRecompose.
func (c *Composer) CommitMigration(o *Outcome, prev int64) error {
	if o == nil || o.Best == nil {
		return fmt.Errorf("core: migration commit of unsuccessful outcome")
	}
	nodes, links := c.demands(o.Request, o.Best)
	if err := c.env.Ledger.MigrateSession(state.Owner(prev), state.Owner(o.Request.ID), nodes, links); err != nil {
		c.env.Tracer.RolledBack(o.Request.ID, o.Request.Client, obs.ReasonCommitNack)
		return fmt.Errorf("request %d: %w", o.Request.ID, err)
	}
	c.env.Counters.AddConfirmations(int64(len(o.Best.Components)))
	c.env.Tracer.SessionMigrated(prev, o.Request.ID, o.Request.Client)
	return nil
}

// AbortRecompose abandons an open migration window: the re-probe's
// transient holds are released and the source session's committed
// allocation stays untouched — the break never happens.
func (c *Composer) AbortRecompose(requestID int64) {
	c.env.Ledger.EndMigration(state.Owner(requestID))
	c.env.Ledger.ReleaseOwner(state.Owner(requestID))
	c.env.Tracer.RolledBack(requestID, -1, obs.ReasonAbort)
}

// Release tears down a committed session (§2.2 Close).
func (c *Composer) Release(requestID int64) {
	c.env.Ledger.ReleaseSession(state.Owner(requestID))
	c.env.Tracer.SessionReleased(requestID)
}

// Abort releases any transient holds still owned by the request, e.g.
// when the caller decides not to commit a successful outcome.
func (c *Composer) Abort(requestID int64) {
	c.env.Ledger.ReleaseOwner(state.Owner(requestID))
	c.env.Tracer.RolledBack(requestID, -1, obs.ReasonAbort)
}

// demands folds a composition into per-node resource and per-overlay-link
// bandwidth demands. Components of the same request sharing a node stack
// their requirements (footnote 5); virtual links sharing an overlay link
// stack their bandwidth; co-located virtual links consume nothing
// (footnote 4).
func (c *Composer) demands(req *component.Request, comp *Composition) (map[int]qos.Resources, map[int]float64) {
	nodes := make(map[int]qos.Resources)
	for pos, id := range comp.Components {
		node := c.env.Catalog.Component(id).Node
		nodes[node] = nodes[node].Add(req.ResReq[pos])
	}
	links := make(map[int]float64)
	for _, route := range comp.Routes {
		if route.CoLocated {
			continue
		}
		for _, link := range route.Links {
			links[link] += req.BandwidthReq
		}
	}
	return nodes, links
}
