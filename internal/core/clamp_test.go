package core

import (
	"math"
	"testing"
)

// The exhaustive-search accounting clamps the per-position width at
// 2^40 but lets the total keep growing, so the int64 → int narrowing
// must clamp too: on 32-bit platforms a large total would otherwise
// wrap negative in Outcome.ProbesSent.
func TestClampToInt(t *testing.T) {
	if got := clampToInt(12345); got != 12345 {
		t.Errorf("clampToInt(12345) = %d", got)
	}
	if got := clampToInt(0); got != 0 {
		t.Errorf("clampToInt(0) = %d", got)
	}
	// math.MaxInt64 exercises the clamp on 32-bit platforms and the
	// exact boundary on 64-bit ones; either way the result is MaxInt.
	if got := clampToInt(math.MaxInt64); got != math.MaxInt {
		t.Errorf("clampToInt(MaxInt64) = %d, want MaxInt", got)
	}
	// A plausible overflowing total: 60 positions at the 2^40 width cap.
	total := int64(60) * (1 << 40)
	if got := clampToInt(total); got < 0 {
		t.Errorf("clampToInt(%d) went negative: %d", total, got)
	}
}
