package core

import (
	"testing"

	"repro/internal/component"
	"repro/internal/qos"
	"repro/internal/state"
)

// recomposeRequest clones an admitted request under a fresh ID, the way
// the runtime re-composition controller re-probes a drifting session.
func recomposeRequest(prev *component.Request, id int64) *component.Request {
	clone := *prev
	clone.ID = id
	clone.ResReq = append([]qos.Resources(nil), prev.ResReq...)
	return &clone
}

func TestProbeRecomposeAndCommitMigration(t *testing.T) {
	env, _ := testEnv(t, 11)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("probe: %v success=%v", err, out.Success())
	}
	if err := c.Commit(out); err != nil {
		t.Fatal(err)
	}

	re := recomposeRequest(req, 2)
	reOut, err := c.ProbeRecompose(re, req.ID)
	if err != nil {
		t.Fatalf("recompose probe: %v", err)
	}
	if !reOut.Success() {
		t.Fatal("recompose found no composition on an idle cluster")
	}
	// With the session's own allocation credited as reusable, the
	// re-probe under identical conditions must find a composition at
	// least as good as the admitted one.
	if reOut.Best.Phi > out.Best.Phi+1e-9 {
		t.Fatalf("recompose phi %v worse than original %v", reOut.Best.Phi, out.Best.Phi)
	}
	// Make-before-break window open: session still committed, holds live.
	if !env.Ledger.HasSession(state.Owner(req.ID)) {
		t.Fatal("session unheld mid-migration")
	}
	if err := env.Ledger.CheckInvariants(); err != nil {
		t.Fatalf("mid-window: %v", err)
	}

	if err := c.CommitMigration(reOut, req.ID); err != nil {
		t.Fatalf("commit migration: %v", err)
	}
	if env.Ledger.HasSession(state.Owner(req.ID)) {
		t.Fatal("old owner still committed after flip")
	}
	if !env.Ledger.HasSession(state.Owner(re.ID)) {
		t.Fatal("new owner not committed after flip")
	}
	if got := env.Ledger.ActiveSessions(); got != 1 {
		t.Fatalf("ActiveSessions = %d after flip", got)
	}
	if err := env.Ledger.CheckInvariants(); err != nil {
		t.Fatalf("post-flip: %v", err)
	}
	// Confirmations charged for both the admission and the migration.
	if env.Counters.Confirmations != 6 {
		t.Errorf("Confirmations = %d, want 6", env.Counters.Confirmations)
	}

	c.Release(re.ID)
	if env.Ledger.ActiveSessions() != 0 {
		t.Fatalf("ActiveSessions after release = %d", env.Ledger.ActiveSessions())
	}
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d not restored: %v", n, got)
		}
	}
}

func TestAbortRecomposeKeepsSession(t *testing.T) {
	env, _ := testEnv(t, 12)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("probe: %v", err)
	}
	if err := c.Commit(out); err != nil {
		t.Fatal(err)
	}

	re := recomposeRequest(req, 2)
	reOut, err := c.ProbeRecompose(re, req.ID)
	if err != nil || !reOut.Success() {
		t.Fatalf("recompose probe: %v", err)
	}
	c.AbortRecompose(re.ID)
	if !env.Ledger.HasSession(state.Owner(req.ID)) {
		t.Fatal("abort lost the committed session")
	}
	if err := env.Ledger.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The aborted probe left no holds behind: a full-capacity bystander
	// request can still be admitted exactly as before.
	c.Release(req.ID)
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d not restored after abort+release: %v", n, got)
		}
	}
}

func TestProbeRecomposeUnknownSession(t *testing.T) {
	env, _ := testEnv(t, 13)
	c := mustComposer(t, env, DefaultConfig())
	re := recomposeRequest(easyRequest(1), 2)
	if _, err := c.ProbeRecompose(re, 999); err == nil {
		t.Fatal("recompose of uncommitted session accepted")
	}
	if err := env.Ledger.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestProbeRecomposeFailureClosesWindow drives the no-composition path:
// the request's QoS bound is impossible, so ProbeRecompose must close
// the migration window and release every hold before returning.
func TestProbeRecomposeFailureClosesWindow(t *testing.T) {
	env, _ := testEnv(t, 14)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("probe: %v", err)
	}
	if err := c.Commit(out); err != nil {
		t.Fatal(err)
	}

	re := recomposeRequest(req, 2)
	re.QoSReq = qos.Vector{Delay: 1e-9, LossCost: qos.LossCost(0.999999)}
	reOut, err := c.ProbeRecompose(re, req.ID)
	if err != nil {
		t.Fatalf("recompose probe errored: %v", err)
	}
	if reOut.Success() {
		t.Fatal("impossible QoS produced a composition")
	}
	// Window closed: a fresh recompose of the same session may begin.
	if err := env.Ledger.BeginMigration(state.Owner(int64(3)), state.Owner(req.ID)); err != nil {
		t.Fatalf("window not closed after failed recompose: %v", err)
	}
	env.Ledger.EndMigration(state.Owner(int64(3)))
	if err := env.Ledger.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
