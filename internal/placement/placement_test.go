package placement

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
	"repro/internal/topology"
)

type clock struct{ now time.Duration }

func (c *clock) Now() time.Duration { return c.now }

func testSetup(t *testing.T) (*component.Catalog, *state.Ledger) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 200
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = 20
	mesh, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = 10
	pcfg.ComponentsPerNode = 2
	cat, err := component.Place(20, pcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	clk := &clock{}
	ledger := state.NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now)
	return cat, ledger
}

func TestNewManagerValidation(t *testing.T) {
	cat, ledger := testSetup(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero period", mutate: func(c *Config) { c.Period = 0 }},
		{name: "zero gap", mutate: func(c *Config) { c.UtilizationGap = 0 }},
		{name: "gap of one", mutate: func(c *Config) { c.UtilizationGap = 1 }},
		{name: "zero moves", mutate: func(c *Config) { c.MaxMovesPerCycle = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewManager(cat, ledger, cfg, nil); err == nil {
				t.Error("NewManager accepted invalid config")
			}
		})
	}
	if _, err := NewManager(nil, ledger, DefaultConfig(), nil); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewManager(cat, nil, DefaultConfig(), nil); err == nil {
		t.Error("nil ledger accepted")
	}
}

func TestRebalanceBalancedSystemIsQuiet(t *testing.T) {
	cat, ledger := testSetup(t)
	m, err := NewManager(cat, ledger, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if moved := m.Rebalance(); moved != 0 {
		t.Errorf("balanced system migrated %d components", moved)
	}
}

func TestRebalanceMovesFromHotNode(t *testing.T) {
	cat, ledger := testSetup(t)
	var c metrics.Counters
	m, err := NewManager(cat, ledger, DefaultConfig(), &c)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate node 0 with committed sessions.
	if err := ledger.CommitSession(1, map[int]qos.Resources{0: {CPU: 90, Memory: 900}}, nil); err != nil {
		t.Fatal(err)
	}
	before := len(cat.OnNode(0))
	if before == 0 {
		t.Skip("node 0 hosts no components under this seed")
	}
	moved := m.Rebalance()
	if moved == 0 {
		t.Fatal("no migration despite 90% vs 0% utilization")
	}
	if got := len(cat.OnNode(0)); got >= before {
		t.Errorf("node 0 still hosts %d components, had %d", got, before)
	}
	if c.Migrations != int64(2*moved) {
		t.Errorf("Migrations counter = %d for %d moves", c.Migrations, moved)
	}
	if m.Moves() != moved {
		t.Errorf("Moves() = %d, want %d", m.Moves(), moved)
	}
}

func TestRebalanceRespectsMaxMoves(t *testing.T) {
	cat, ledger := testSetup(t)
	cfg := DefaultConfig()
	cfg.MaxMovesPerCycle = 1
	m, err := NewManager(cat, ledger, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.CommitSession(1, map[int]qos.Resources{0: {CPU: 95, Memory: 900}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := ledger.CommitSession(2, map[int]qos.Resources{1: {CPU: 95, Memory: 900}}, nil); err != nil {
		t.Fatal(err)
	}
	if moved := m.Rebalance(); moved > 1 {
		t.Errorf("moved %d components, cap is 1", moved)
	}
}

func TestRebalanceSkipsDownNodes(t *testing.T) {
	cat, ledger := testSetup(t)
	m, err := NewManager(cat, ledger, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.CommitSession(1, map[int]qos.Resources{0: {CPU: 90, Memory: 900}}, nil); err != nil {
		t.Fatal(err)
	}
	// Mark every node but the hot one down: no migration target exists.
	for n := 1; n < ledger.NumNodes(); n++ {
		cat.SetNodeAvailable(n, false)
	}
	if moved := m.Rebalance(); moved != 0 {
		t.Errorf("migrated %d components to down nodes", moved)
	}
}

func TestCatalogMoveUpdatesIndexes(t *testing.T) {
	cat, _ := testSetup(t)
	id := cat.OnNode(0)[0]
	if err := cat.Move(id, 5); err != nil {
		t.Fatal(err)
	}
	if cat.Component(id).Node != 5 {
		t.Errorf("component node = %d", cat.Component(id).Node)
	}
	for _, cid := range cat.OnNode(0) {
		if cid == id {
			t.Error("component still indexed on old node")
		}
	}
	found := false
	for _, cid := range cat.OnNode(5) {
		if cid == id {
			found = true
		}
	}
	if !found {
		t.Error("component not indexed on new node")
	}
	// Idempotent move and error cases.
	if err := cat.Move(id, 5); err != nil {
		t.Errorf("same-node move: %v", err)
	}
	if err := cat.Move(component.ComponentID(-1), 5); err == nil {
		t.Error("unknown component accepted")
	}
	if err := cat.Move(id, 999); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestCatalogCloneIndependence(t *testing.T) {
	cat, _ := testSetup(t)
	clone := cat.Clone()
	id := cat.OnNode(0)[0]
	if err := clone.Move(id, 3); err != nil {
		t.Fatal(err)
	}
	if cat.Component(id).Node == 3 {
		t.Error("move on clone mutated the original")
	}
	clone.SetNodeAvailable(2, false)
	if !cat.NodeIsAvailable(2) {
		t.Error("availability change on clone mutated the original")
	}
}
