// Package placement implements dynamic component placement — the third
// future-work direction of the paper (§6): integrating component
// migration with the composition system. A Manager periodically compares
// node utilizations and migrates components from the hottest nodes to
// the coldest, so subsequent compositions (which operate on the current
// placement, footnote 1) find candidates where capacity actually is.
//
// Only the placement moves: running sessions keep their committed
// resources on the original node until they close, exactly as a live
// migration that drains old sessions would behave.
package placement

import (
	"fmt"
	"time"

	"repro/internal/component"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Config tunes the migration policy.
type Config struct {
	// Period is the rebalance cycle length.
	Period time.Duration
	// UtilizationGap is the CPU-utilization difference between the
	// hottest and coldest node that triggers a migration (0..1).
	UtilizationGap float64
	// MaxMovesPerCycle bounds migrations per rebalance pass.
	MaxMovesPerCycle int
}

// DefaultConfig rebalances every 5 minutes, moving at most 4 components
// when utilizations diverge by 40 points or more.
func DefaultConfig() Config {
	return Config{
		Period:           5 * time.Minute,
		UtilizationGap:   0.4,
		MaxMovesPerCycle: 4,
	}
}

func (c *Config) validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("placement: Period %v <= 0", c.Period)
	}
	if c.UtilizationGap <= 0 || c.UtilizationGap >= 1 {
		return fmt.Errorf("placement: UtilizationGap %v out of (0, 1)", c.UtilizationGap)
	}
	if c.MaxMovesPerCycle < 1 {
		return fmt.Errorf("placement: MaxMovesPerCycle %d < 1", c.MaxMovesPerCycle)
	}
	return nil
}

// Manager migrates components between nodes.
type Manager struct {
	cfg      Config
	catalog  *component.Catalog
	ledger   *state.Ledger
	counters *metrics.Counters
	moves    int
}

// NewManager validates the configuration and builds a manager operating
// on the given (mutable) catalog and resource ledger. Counters may be
// nil.
func NewManager(catalog *component.Catalog, ledger *state.Ledger, cfg Config, counters *metrics.Counters) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if catalog == nil || ledger == nil {
		return nil, fmt.Errorf("placement: nil catalog or ledger")
	}
	if counters == nil {
		counters = &metrics.Counters{}
	}
	return &Manager{cfg: cfg, catalog: catalog, ledger: ledger, counters: counters}, nil
}

// Period returns the configured rebalance period.
func (m *Manager) Period() time.Duration { return m.cfg.Period }

// Moves returns the total number of migrations performed.
func (m *Manager) Moves() int { return m.moves }

// utilization returns the node's committed CPU fraction.
func (m *Manager) utilization(node int) float64 {
	capacity := m.ledger.NodeCapacity(node)
	if capacity.CPU <= 0 {
		return 0
	}
	return 1 - m.ledger.NodeCommittedAvailable(node).CPU/capacity.CPU
}

// Rebalance performs one migration pass and returns the number of
// components moved. Each move relocates one component from the hottest
// node to the coldest available node; a migration costs two control
// messages (drain notice + placement update).
func (m *Manager) Rebalance() int {
	moved := 0
	for i := 0; i < m.cfg.MaxMovesPerCycle; i++ {
		hot, cold := m.extremes()
		if hot < 0 || cold < 0 {
			break
		}
		if m.utilization(hot)-m.utilization(cold) < m.cfg.UtilizationGap {
			break
		}
		donors := m.catalog.OnNode(hot)
		if len(donors) == 0 {
			break
		}
		// Move the last-listed component: the index update is O(1) and
		// the choice within a node is immaterial to the policy.
		id := donors[len(donors)-1]
		if err := m.catalog.Move(id, cold); err != nil {
			break
		}
		m.counters.AddMigrations(2)
		m.moves++
		moved++
	}
	return moved
}

// extremes returns the hottest node that still hosts a component and the
// coldest available node, or -1s when the system is degenerate.
func (m *Manager) extremes() (hot, cold int) {
	hot, cold = -1, -1
	var hotU, coldU float64
	for node := 0; node < m.ledger.NumNodes(); node++ {
		if !m.catalog.NodeIsAvailable(node) {
			continue
		}
		u := m.utilization(node)
		if len(m.catalog.OnNode(node)) > 0 && (hot < 0 || u > hotU) {
			hot, hotU = node, u
		}
		if cold < 0 || u < coldU {
			cold, coldU = node, u
		}
	}
	if hot == cold {
		return -1, -1
	}
	return hot, cold
}
