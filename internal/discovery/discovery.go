// Package discovery provides the decentralized service discovery the
// probing protocol uses to locate candidate components for each next-hop
// function (§3.3 step 2, referencing the SpiderNet peer-to-peer discovery
// system). The real SpiderNet is a DHT; composition only needs the
// resulting candidate list plus a per-lookup message cost, which this
// registry models with an O(log N) hop count per lookup.
package discovery

import (
	"math"

	"repro/internal/component"
	"repro/internal/metrics"
)

// Registry resolves stream processing functions to the candidate
// components currently deployed in the system.
type Registry struct {
	catalog  *component.Catalog
	hopCost  int64
	counters *metrics.Counters
}

// NewRegistry builds a registry over the deployed catalog. numNodes sizes
// the simulated DHT: each lookup costs ceil(log2(numNodes)) messages.
// Counters may be nil to disable accounting.
func NewRegistry(catalog *component.Catalog, numNodes int, counters *metrics.Counters) *Registry {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	hop := int64(1)
	if numNodes > 1 {
		hop = int64(math.Ceil(math.Log2(float64(numNodes))))
	}
	return &Registry{catalog: catalog, hopCost: hop, counters: counters}
}

// Lookup returns the IDs of components providing function f that are
// currently reachable (their hosting node is up), charging one DHT
// traversal to the discovery counter. The returned slice is shared
// storage; callers must not modify it.
func (r *Registry) Lookup(f component.FunctionID) []component.ComponentID {
	r.counters.AddDiscovery(r.hopCost)
	candidates := r.catalog.Candidates(f)
	if !r.catalog.HasDownNodes() {
		return candidates
	}
	usable := make([]component.ComponentID, 0, len(candidates))
	for _, id := range candidates {
		if r.catalog.Usable(id) {
			usable = append(usable, id)
		}
	}
	return usable
}

// LookupCost returns the message cost charged per lookup.
func (r *Registry) LookupCost() int64 { return r.hopCost }
