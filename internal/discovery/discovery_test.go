package discovery

import (
	"math/rand"
	"testing"

	"repro/internal/component"
	"repro/internal/metrics"
)

func testCatalog(t *testing.T) *component.Catalog {
	t.Helper()
	cat, err := component.Place(160, component.DefaultPlacementConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestLookupReturnsCandidates(t *testing.T) {
	cat := testCatalog(t)
	reg := NewRegistry(cat, 160, nil)
	for f := 0; f < cat.NumFunctions(); f++ {
		got := reg.Lookup(component.FunctionID(f))
		want := cat.Candidates(component.FunctionID(f))
		if len(got) != len(want) {
			t.Fatalf("function %d: %d candidates, want %d", f, len(got), len(want))
		}
		for _, id := range got {
			if cat.Component(id).Function != component.FunctionID(f) {
				t.Fatalf("lookup(%d) returned component of function %d", f, cat.Component(id).Function)
			}
		}
	}
}

func TestLookupAccounting(t *testing.T) {
	cat := testCatalog(t)
	var c metrics.Counters
	reg := NewRegistry(cat, 256, &c)
	if reg.LookupCost() != 8 { // log2(256)
		t.Errorf("LookupCost = %d, want 8", reg.LookupCost())
	}
	reg.Lookup(0)
	reg.Lookup(1)
	if c.Discovery != 16 {
		t.Errorf("Discovery = %d, want 16", c.Discovery)
	}
}

func TestLookupCostSmallSystems(t *testing.T) {
	cat := testCatalog(t)
	if got := NewRegistry(cat, 1, nil).LookupCost(); got != 1 {
		t.Errorf("LookupCost(1 node) = %d, want 1", got)
	}
	if got := NewRegistry(cat, 0, nil).LookupCost(); got != 1 {
		t.Errorf("LookupCost(0 nodes) = %d, want 1", got)
	}
}

func TestLookupUnknownFunction(t *testing.T) {
	cat := testCatalog(t)
	reg := NewRegistry(cat, 160, nil)
	if got := reg.Lookup(component.FunctionID(-1)); got != nil {
		t.Errorf("Lookup(-1) = %v, want nil", got)
	}
}

func TestLookupFiltersDownNodes(t *testing.T) {
	cat := testCatalog(t)
	reg := NewRegistry(cat, 160, nil)
	f := component.FunctionID(0)
	before := len(reg.Lookup(f))
	if before == 0 {
		t.Fatal("no candidates for function 0")
	}
	// Take one candidate's node down: it must vanish from lookups.
	victim := cat.Candidates(f)[0]
	cat.SetNodeAvailable(cat.Component(victim).Node, false)
	after := reg.Lookup(f)
	if len(after) >= before {
		t.Fatalf("lookup returned %d candidates with a node down, had %d", len(after), before)
	}
	for _, id := range after {
		if id == victim {
			t.Error("candidate on a down node still returned")
		}
	}
	// Repair restores it.
	cat.SetNodeAvailable(cat.Component(victim).Node, true)
	if got := len(reg.Lookup(f)); got != before {
		t.Errorf("lookup after repair = %d, want %d", got, before)
	}
}
