package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismScope lists the import-path fragments the determinism
// analyzer applies to. The golden parity test and the harness oracle
// assume these packages are bit-reproducible under a fixed seed, so wall
// clocks, the global math/rand state, and map-iteration-order leaks are
// correctness bugs there, not style. runtime, workload, and metrics are
// in scope because the multi-app harness replays them through its
// replica oracle and the scenario-family plans promise bit-identical
// materialisation per seed; runtime already injects rand/clock and must
// stay that way. server and obs promise virtual-clock determinism too:
// the lease reaper and the QoS DriftMonitor both tick on the injected
// harness clock, so a stray wall-clock read there would desynchronize
// replayed sessions. Tests may extend this to cover fixture packages.
var DeterminismScope = []string{
	"internal/core",
	"internal/dist",
	"internal/harness",
	"internal/faults",
	"internal/runtime",
	"internal/workload",
	"internal/metrics",
	"internal/server",
	"internal/obs",
}

// Determinism reports nondeterminism sources in the deterministic
// packages: wall-clock time.* calls (inject harness/clock.Clock
// instead), global math/rand top-level functions (inject a seeded
// *rand.Rand), and iteration over a map whose body feeds ordered
// output — appending to a slice that is never sorted, emitting trace
// events, or accumulating floating-point sums, all of which leak
// map-iteration order into observable results.
var Determinism = &Analyzer{
	Name: "acpdeterminism",
	Doc: "forbid wall clocks, global math/rand, and ordered output from map iteration " +
		"in the deterministic packages (waive with //acp:nondeterminism-ok <why>)",
	Run: runDeterminism,
}

const ndWaiver = "nondeterminism-ok"

// wallClockFuncs are the time package entry points that read or schedule
// against the wall clock. Durations and formatting are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"Sleep": true,
}

// seededRandCtors are the math/rand package-level functions that build
// injectable generator state rather than touching the global source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 counterparts.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !pathInScope(pass.Pkg.Path(), DeterminismScope) {
		return nil
	}
	for _, file := range pass.Files {
		// Test files are out of scope: the determinism invariant covers
		// the engine's decision paths, while test drivers legitimately
		// wait in wall time (deadlines around goroutines, the virtual
		// clock's pacing sleep). The standalone loader never sees them,
		// but `go vet -vettool` analyzes test packages too.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClockCall(pass, n)
				checkGlobalRandCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkWallClockCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // time.Time/Duration methods (After, Sub, ...) are pure
	}
	if !wallClockFuncs[fn.Name()] {
		return
	}
	if pass.waived(call.Pos(), ndWaiver) {
		return
	}
	pass.Reportf(call.Pos(),
		"time.%s reads the wall clock; deterministic packages must go through an injected harness/clock.Clock (//acp:nondeterminism-ok <why> to waive)",
		fn.Name())
}

func checkGlobalRandCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods on an injected *rand.Rand are the approved path
	}
	if seededRandCtors[fn.Name()] {
		return
	}
	if pass.waived(call.Pos(), ndWaiver) {
		return
	}
	pass.Reportf(call.Pos(),
		"rand.%s uses the process-global random source; deterministic packages must use an injected seeded *rand.Rand (//acp:nondeterminism-ok <why> to waive)",
		fn.Name())
}

// checkMapRange flags `range m` over a map whose body leaks iteration
// order into ordered output. Three leak shapes are recognised:
//
//  1. appending to a slice declared outside the loop, unless the slice
//     is later passed to a sort.* / slices.Sort* call in the same
//     function (the collect-then-sort idiom);
//  2. emitting trace events (calls on an obs tracer) from inside the
//     loop body, which serialises events in map order;
//  3. accumulating floating-point values (floats, or structs of floats
//     such as qos.Resources) into a variable that outlives the loop —
//     float addition is not associative, so the sum depends on order.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.waived(rng.Pos(), ndWaiver) {
		return // a waiver on the range line covers the whole loop body
	}
	rangeVars := rangeVarObjs(pass, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, file, rng, rangeVars, n)
		case *ast.CallExpr:
			checkRangeEmit(pass, rng, n)
		case *ast.IncDecStmt:
			// ++/-- on integers is order-independent; nothing to do.
		}
		return true
	})
}

func rangeVarObjs(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func checkRangeAssign(pass *Pass, file *ast.File, rng *ast.RangeStmt, rangeVars map[types.Object]bool, as *ast.AssignStmt) {
	// Appends first: x = append(x, ...) or x := append(y, ...).
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		dest := as.Lhs[i]
		destRoot := rootIdent(dest)
		if destRoot == nil {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(destRoot)
		if obj == nil || !declaredOutside(obj, rng) {
			continue // iteration-local slice; cannot leak order past the loop
		}
		if sortedAfter(pass, file, rng, obj) {
			continue
		}
		if pass.waived(as.Pos(), ndWaiver) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append inside range over map leaks iteration order into %s; sort it afterwards or iterate sorted keys (//acp:nondeterminism-ok <why> to waive)",
			destRoot.Name)
		return
	}

	// Floating-point accumulation: LHS outlives the loop, RHS reads it
	// back (x = x.Add(...), x = x + h, or x += h with a floaty type).
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) && as.Tok == token.ASSIGN {
			break
		}
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(root)
		if obj == nil || rangeVars[obj] || !declaredOutside(obj, rng) {
			continue
		}
		// Indexing by a range variable writes disjoint slots per
		// iteration; that is order-independent.
		if indexedByRangeVar(pass, lhs, rangeVars) {
			continue
		}
		t := pass.TypesInfo.TypeOf(lhs)
		if !isFloaty(t) {
			continue
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			if i < len(as.Rhs) {
				accum = mentionsObj(pass, as.Rhs[i], obj)
			}
		}
		if !accum {
			continue
		}
		if pass.waived(as.Pos(), ndWaiver) {
			continue
		}
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s inside range over map makes the sum depend on iteration order; iterate sorted keys (//acp:nondeterminism-ok <why> to waive)",
			root.Name)
		return
	}
}

// checkRangeEmit flags trace-event emission in map-iteration order:
// calls to methods on a receiver type named Tracer. Only the tracer
// serialises events; other obs types (counters, gauges, snapshot
// readers) commute or write into keyed maps, so calling them under a
// map range is order-independent — obs itself is in scope and its
// Registry.Snapshot loops must stay clean without waivers.
func checkRangeEmit(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	if named.Obj().Name() != "Tracer" {
		return
	}
	if pass.waived(call.Pos(), ndWaiver) {
		return
	}
	pass.Reportf(call.Pos(),
		"trace event %s.%s emitted inside range over map serialises events in iteration order; iterate sorted keys (//acp:nondeterminism-ok <why> to waive)",
		named.Obj().Name(), fn.Name())
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func declaredOutside(obj types.Object, n ast.Node) bool {
	return obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

func indexedByRangeVar(pass *Pass, lhs ast.Expr, rangeVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && rangeVars[obj] {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}

func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes obj to a sorting call: sort.Slice/Sort/Ints/Strings/
// SliceStable/..., or slices.Sort/SortFunc/SortStableFunc. That is the
// deterministic collect-then-sort idiom and must not be flagged.
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	fd := enclosingFuncDecl(file, rng.Pos())
	if fd == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && pass.TypesInfo.ObjectOf(root) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
