package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HoldPair checks that transient-resource holds are paired with a
// release or rollback on every failure path. A call to HoldNode* /
// HoldLink* creates a hold that is supposed to outlive the function on
// success (the deputy releases it after the decision) — but on a failure
// exit (`continue` to the next candidate, or a return whose results say
// "failed": a literal false or a non-nil error) every hold the current
// attempt created must have been released first. This is exactly the
// shape of the PR 4 extendProbe partial-hold leak: a candidate that
// failed its link holds kept its node hold until the owner-level release,
// squatting on capacity that concurrent requests were raw-checked
// against.
//
// The analysis is flow-sensitive over the function body: it tracks the
// set of possibly-outstanding hold sites along each path, refines the
// set through branches on the ok/created results of tracked hold calls,
// and treats ReleaseNodeHold / ReleaseLinkHold / ReleaseOwner /
// Rollback* calls (including deferred ones) as discharging holds of the
// matching kind. Loop bodies are analysed once per entry state; holds
// that survive a full iteration are deliberately considered settled —
// sibling probes keep their reservations by design.
var HoldPair = &Analyzer{
	Name: "acpholdpair",
	Doc: "require every failure path after a HoldNode*/HoldLink* call to release or " +
		"roll back the holds it created (waive with //acp:holdpair-ok <why>)",
	Run: runHoldPair,
}

const holdWaiver = "holdpair-ok"

type holdKind int

const (
	holdNode holdKind = iota
	holdLink
)

// holdSite is one Hold* call site in a function.
type holdSite struct {
	id   int
	kind holdKind
	pos  token.Pos
	name string
}

type holdRole int

const (
	roleOK holdRole = iota
	roleCreated
)

// holdState is the abstract state at one program point: which hold
// sites may have outstanding (unreleased) holds, which boolean
// variables refine which site, and which kinds a deferred release
// already covers at every later exit.
type holdState struct {
	outstanding map[int]bool
	roles       map[types.Object]roleBinding
	deferred    map[holdKind]bool
}

type roleBinding struct {
	site int
	role holdRole
}

func newHoldState() *holdState {
	return &holdState{
		outstanding: map[int]bool{},
		roles:       map[types.Object]roleBinding{},
		deferred:    map[holdKind]bool{},
	}
}

func (s *holdState) clone() *holdState {
	c := newHoldState()
	for k, v := range s.outstanding {
		c.outstanding[k] = v
	}
	for k, v := range s.roles {
		c.roles[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

// join folds other into s: a site is outstanding if it may be
// outstanding on either path; a deferred release holds only if both
// paths registered it.
func (s *holdState) join(other *holdState) {
	for k, v := range other.outstanding {
		if v {
			s.outstanding[k] = true
		}
	}
	for k, v := range other.roles {
		if _, ok := s.roles[k]; !ok {
			s.roles[k] = v
		}
	}
	for k := range s.deferred {
		if !other.deferred[k] {
			delete(s.deferred, k)
		}
	}
}

// holdChecker runs the analysis over one function.
type holdChecker struct {
	pass  *Pass
	fd    *ast.FuncDecl
	sites []*holdSite
	// sitesByCall maps a Hold* CallExpr to its site.
	sitesByCall map[*ast.CallExpr]*holdSite
}

func runHoldPair(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Hold") || strings.HasPrefix(fd.Name.Name, "Release") {
				continue // the ledger's own implementation wrappers
			}
			if !containsHoldCall(pass, fd) {
				continue
			}
			if funcHasAnnotation(fd, holdWaiver) {
				continue
			}
			hc := &holdChecker{pass: pass, fd: fd, sitesByCall: map[*ast.CallExpr]*holdSite{}}
			hc.check()
		}
	}
	return nil
}

func containsHoldCall(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := holdCallKind(call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// holdCallKind classifies a call as a node or link hold by callee name.
func holdCallKind(call *ast.CallExpr) (holdKind, bool) {
	name := calleeName(call)
	switch {
	case strings.HasPrefix(name, "HoldNode"):
		return holdNode, true
	case strings.HasPrefix(name, "HoldLink"):
		return holdLink, true
	}
	return 0, false
}

// releaseKinds classifies a call as a release/rollback and returns the
// kinds it discharges.
func releaseKinds(call *ast.CallExpr) []holdKind {
	name := calleeName(call)
	switch {
	case strings.HasPrefix(name, "ReleaseNodeHold"):
		return []holdKind{holdNode}
	case strings.HasPrefix(name, "ReleaseLinkHold"):
		return []holdKind{holdLink}
	case strings.HasPrefix(name, "ReleaseOwner"), strings.HasPrefix(name, "releaseOwner"),
		strings.Contains(name, "Rollback"), strings.Contains(name, "rollback"),
		strings.HasPrefix(name, "ReleaseHolds"), strings.HasPrefix(name, "releaseHolds"):
		return []holdKind{holdNode, holdLink}
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// check runs the forward dataflow over the function's CFG (see cfg.go).
// The abstract domain is *holdState; branch-condition refinement, the
// failure-return check, and the continue check plug in as hooks.
func (hc *holdChecker) check() {
	runFlow(buildCFG(hc.fd.Body), newHoldState(), flowHooks[*holdState]{
		clone: (*holdState).clone,
		join: func(dst, src *holdState) *holdState {
			dst.join(src)
			return dst
		},
		transfer: hc.transfer,
		refine:   hc.refine,
		onReturn: func(ret *ast.ReturnStmt, state *holdState) {
			if hc.isFailureReturn(ret) {
				hc.reportLeaks(ret.Pos(), "failure return", state)
			}
		},
		onBranch: func(br *ast.BranchStmt, state *holdState) {
			if br.Tok == token.CONTINUE {
				// Abandoning the current candidate/iteration with holds the
				// iteration created and never released. Holds that were
				// created before this loop began (surviving siblings from an
				// earlier phase) are kept by design and not charged here.
				hc.reportLeaksWithin(br.Pos(), "continue", state, enclosingLoop(hc.fd, br.Pos()))
			}
		},
	})
}

// site registers (or returns) the hold site for a call.
func (hc *holdChecker) site(call *ast.CallExpr, kind holdKind) *holdSite {
	if s, ok := hc.sitesByCall[call]; ok {
		return s
	}
	s := &holdSite{id: len(hc.sites), kind: kind, pos: call.Pos(), name: calleeName(call)}
	hc.sites = append(hc.sites, s)
	hc.sitesByCall[call] = s
	return s
}

// scanExpr walks an expression, registering hold sites (marking them
// outstanding) and applying releases, in evaluation order.
func (hc *holdChecker) scanExpr(e ast.Expr, state *holdState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := holdCallKind(call); ok {
			s := hc.site(call, kind)
			state.outstanding[s.id] = true
		}
		if kinds := releaseKinds(call); kinds != nil {
			hc.applyRelease(state, kinds)
		}
		return true
	})
}

func (hc *holdChecker) applyRelease(state *holdState, kinds []holdKind) {
	for _, k := range kinds {
		for id := range state.outstanding {
			if hc.sites[id].kind == k {
				delete(state.outstanding, id)
			}
		}
	}
}

// refine narrows state assuming cond evaluated to val. Handles:
// ok-variable (true means the hold may exist, false means it does not),
// created-variable (true means this call created it), !expr, direct
// Hold* calls in the condition, and && chains.
func (hc *holdChecker) refine(cond ast.Expr, val bool, state *holdState) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			hc.refine(c.X, !val, state)
		}
	case *ast.BinaryExpr:
		if c.Op == token.LAND && val {
			hc.refine(c.X, true, state)
			hc.refine(c.Y, true, state)
		}
		if c.Op == token.LOR && !val {
			hc.refine(c.X, false, state)
			hc.refine(c.Y, false, state)
		}
	case *ast.Ident:
		obj := hc.pass.TypesInfo.ObjectOf(c)
		if obj == nil {
			return
		}
		if b, ok := state.roles[obj]; ok && !val {
			// ok == false means nothing was created; created == false
			// means an idempotent no-op (a sibling's hold, not ours).
			delete(state.outstanding, b.site)
		}
	case *ast.CallExpr:
		if _, ok := holdCallKind(c); ok && !val {
			if s, ok := hc.sitesByCall[c]; ok {
				delete(state.outstanding, s.id)
			}
		}
	}
}

// transfer interprets one CFG node (a statement or a branch-condition
// expression), mutating state in place. Structured control flow
// (branching, joining, loop policy) lives in the CFG; only straight-line
// effects are handled here.
func (hc *holdChecker) transfer(n ast.Node, state *holdState) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		hc.scanExpr(n.X, state)
	case *ast.AssignStmt:
		hc.assign(n, state)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						hc.scanExpr(v, state)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred release covers every subsequent exit. Inspect visits
		// the deferred call itself as well as calls nested in its args.
		ast.Inspect(n.Call, func(nn ast.Node) bool {
			if call, ok := nn.(*ast.CallExpr); ok {
				if kinds := releaseKinds(call); kinds != nil {
					hc.applyRelease(state, kinds)
					for _, k := range kinds {
						state.deferred[k] = true
					}
				}
			}
			return true
		})
	case *ast.GoStmt:
		hc.scanExpr(n.Call, state)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			hc.scanExpr(r, state)
		}
	case *ast.IncDecStmt, *ast.EmptyStmt, *ast.BranchStmt, *ast.SendStmt:
		// No hold/release effects; break and continue are observed by the
		// onBranch hook, and the CFG's joins over-approximate their flow.
	case ast.Expr:
		hc.scanExpr(n, state)
	}
}

func (hc *holdChecker) assign(as *ast.AssignStmt, state *holdState) {
	// Results of a hold call bind ok/created roles:
	//   ok := l.HoldNode(...)            ok
	//   ok, created := l.HoldNodeTracked(...)  ok, created
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if kind, isHold := holdCallKind(call); isHold {
				s := hc.site(call, kind)
				state.outstanding[s.id] = true
				roles := []holdRole{roleOK, roleCreated}
				for i, lhs := range as.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" || i >= len(roles) {
						continue
					}
					if obj := hc.pass.TypesInfo.ObjectOf(id); obj != nil {
						state.roles[obj] = roleBinding{site: s.id, role: roles[i]}
					}
				}
				// Release calls nested in args (unusual) still apply.
				for _, arg := range call.Args {
					hc.scanExpr(arg, state)
				}
				return
			}
		}
	}
	for _, r := range as.Rhs {
		hc.scanExpr(r, state)
	}
	// Reassigning a role variable to anything else drops the binding.
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := hc.pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, bound := state.roles[obj]; bound {
					delete(state.roles, obj)
				}
			}
		}
	}
}

// isFailureReturn reports whether the return signals failure: any result
// is the constant false, or an error-typed expression that is not nil.
func (hc *holdChecker) isFailureReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		tv, ok := hc.pass.TypesInfo.Types[r]
		if !ok {
			continue
		}
		if tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value) {
			return true
		}
		if tv.Type != nil && !tv.IsNil() && isErrorType(tv.Type) {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Error" {
			return true
		}
	}
	return false
}

// enclosingLoop returns the innermost for/range statement containing pos.
func enclosingLoop(fd *ast.FuncDecl, pos token.Pos) ast.Node {
	var loop ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos <= n.End() {
				loop = n // keep innermost: later matches are nested deeper
			}
		}
		return true
	})
	return loop
}

func (hc *holdChecker) reportLeaks(pos token.Pos, exit string, state *holdState) {
	hc.reportLeaksWithin(pos, exit, state, nil)
}

// reportLeaksWithin reports outstanding holds at an exit; when within is
// non-nil only hold sites lexically inside it are charged.
func (hc *holdChecker) reportLeaksWithin(pos token.Pos, exit string, state *holdState, within ast.Node) {
	if len(state.outstanding) == 0 {
		return
	}
	var leaked []*holdSite
	for id := range state.outstanding {
		s := hc.sites[id]
		if state.deferred[s.kind] {
			continue
		}
		if within != nil && (s.pos < within.Pos() || s.pos > within.End()) {
			continue
		}
		leaked = append(leaked, s)
	}
	if len(leaked) == 0 {
		return
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].pos < leaked[j].pos })
	if hc.pass.waived(pos, holdWaiver) {
		return
	}
	first := hc.pass.Fset.Position(leaked[0].pos)
	extra := ""
	if len(leaked) > 1 {
		extra = " (and more)"
	}
	pass := hc.pass
	pass.Reportf(pos,
		"%s may leak the hold created by %s at line %d%s; release or roll back every hold this attempt created before abandoning it (//acp:holdpair-ok <why> to waive)",
		exit, leaked[0].name, first.Line, extra)
	// Report once per exit: clearing the reported sites avoids cascading
	// duplicates when the same state flows to a later join.
	for _, s := range leaked {
		delete(state.outstanding, s.id)
	}
}
