package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package mutex-acquisition graph and reports
// cycles: if one code path locks A and then B while another locks B and
// then A, the two paths deadlock when they interleave. This is the
// deadlock class the ROADMAP's striped-ledger-locks item walks into, so
// the check lands first.
//
// Lock classes are receiver-insensitive, RacerD-style: every c.mu for
// the same struct field is one class regardless of which instance c is,
// a local/parameter whose named type embeds a mutex keys by the type,
// and a plain mutex variable keys by the variable. Striped locks
// (mu[i] then mu[j] on one slice field) collapse to one class and are
// deliberately not reported: intra-class ordering needs a value-level
// protocol (index order) that a static class graph cannot see.
//
// The analysis runs the shared CFG dataflow (cfg.go) per function with
// an ordered lockset as the abstract state, charges nested acquisitions
// as graph edges, and sees through same-package calls with transitive
// call summaries (summary.go): calling a method that locks B while
// holding A is an A→B edge at the call site. Deferred calls run
// synchronously before return and are charged; `go` statements and
// function-literal bodies escape the caller's lockset (literals are
// analysed as their own roots with an empty lockset). One diagnostic is
// reported per strongly connected component, at the latest acquisition
// site in the cycle. Test files are skipped.
var LockOrder = &Analyzer{
	Name: "acplockorder",
	Doc: "report mutex acquisition cycles (lock-order inversions) in the per-package " +
		"lock graph (waive with //acp:lockorder-ok <why>)",
	Run: runLockOrder,
}

const lockOrderWaiver = "lockorder-ok"

type lockEdgeKey struct {
	from, to types.Object
}

type lockOrderChecker struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	acquires func(*types.Func) map[types.Object]bool
	// edges maps an ordered class pair to the earliest site where `to`
	// was acquired while `from` was held.
	edges map[lockEdgeKey]token.Pos
	names map[types.Object]string
}

type lockState struct {
	held []types.Object
}

func (s *lockState) clone() *lockState {
	return &lockState{held: append([]types.Object(nil), s.held...)}
}

// join keeps only the locks held on both paths, in dst's order.
func (s *lockState) join(other *lockState) *lockState {
	kept := s.held[:0]
	for _, h := range s.held {
		for _, o := range other.held {
			if h == o {
				kept = append(kept, h)
				break
			}
		}
	}
	s.held = kept
	return s
}

func runLockOrder(pass *Pass) error {
	decls := declaredFuncs(pass)
	lc := &lockOrderChecker{
		pass:  pass,
		decls: decls,
		edges: map[lockEdgeKey]token.Pos{},
		names: map[types.Object]string{},
	}
	lc.acquires = callSummaries(pass, decls, lc.directAcquires)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lc.checkBody(fd.Body)
			}
		}
		// Function literals run at an unknown time (goroutines, timer
		// callbacks): analyse each as a root with an empty lockset.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lc.checkBody(lit.Body)
			}
			return true
		})
	}
	lc.report()
	return nil
}

func (lc *lockOrderChecker) checkBody(body *ast.BlockStmt) {
	runFlow(buildCFG(body), &lockState{}, flowHooks[*lockState]{
		clone:    (*lockState).clone,
		join:     (*lockState).join,
		transfer: lc.transfer,
	})
}

func (lc *lockOrderChecker) transfer(n ast.Node, s *lockState) {
	switch n.(type) {
	case *ast.DeferStmt:
		// Deferred calls run at return, where the lockset differs from
		// the current one; they are charged through call summaries at the
		// caller instead.
		return
	case *ast.GoStmt:
		// The spawned body runs on another goroutine without this
		// goroutine's locks; its literal is analysed as its own root.
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			lc.call(nn, s)
		}
		return true
	})
}

func (lc *lockOrderChecker) call(call *ast.CallExpr, s *lockState) {
	if recv, name, ok := syncMutexMethod(lc.pass.TypesInfo, call); ok {
		obj, disp := syncRecvClass(lc.pass, recv)
		if obj == nil {
			return
		}
		if _, ok := lc.names[obj]; !ok {
			lc.names[obj] = disp
		}
		switch name {
		case "Unlock", "RUnlock":
			for i := len(s.held) - 1; i >= 0; i-- {
				if s.held[i] == obj {
					s.held = append(s.held[:i], s.held[i+1:]...)
					break
				}
			}
		default: // Lock, RLock, TryLock, TryRLock
			lc.charge(s, obj, call.Pos())
			for _, h := range s.held {
				if h == obj {
					return
				}
			}
			s.held = append(s.held, obj)
		}
		return
	}
	if g := staticCallee(lc.pass, lc.decls, call); g != nil {
		for a := range lc.acquires(g) {
			lc.charge(s, a, call.Pos())
		}
	}
}

// charge records an edge h→obj for every held lock h.
func (lc *lockOrderChecker) charge(s *lockState, obj types.Object, pos token.Pos) {
	for _, h := range s.held {
		if h == obj {
			continue
		}
		k := lockEdgeKey{from: h, to: obj}
		if p, ok := lc.edges[k]; !ok || pos < p {
			lc.edges[k] = pos
		}
	}
}

// directAcquires lists the lock classes a function acquires in its own
// body (deferred calls included, goroutines and literals excluded); the
// summary layer closes it over same-package callees.
func (lc *lockOrderChecker) directAcquires(fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			recv, name, ok := syncMutexMethod(lc.pass.TypesInfo, n)
			if !ok || name == "Unlock" || name == "RUnlock" {
				return true
			}
			obj, disp := syncRecvClass(lc.pass, recv)
			if obj == nil {
				return true
			}
			if _, ok := lc.names[obj]; !ok {
				lc.names[obj] = disp
			}
			out = append(out, obj)
		}
		return true
	})
	return out
}

// syncMutexMethod matches a call to sync.Mutex/RWMutex/Locker
// Lock/RLock/TryLock/TryRLock/Unlock/RUnlock and returns the receiver
// expression and method name.
func syncMutexMethod(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// syncRecvClass maps the receiver expression of a sync primitive
// (mutex, WaitGroup) to its sharing class and a display name. Field
// selectors key by the field object (one class per struct field,
// instance-insensitive); striped mu[i] collapses to the slice field; a
// named struct embedding the primitive keys by the type; a plain
// variable keys by the variable.
func syncRecvClass(pass *Pass, e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			name := v.Name()
			if sel, ok := pass.TypesInfo.Selections[e]; ok {
				if named, ok := derefType(sel.Recv()).(*types.Named); ok {
					name = named.Obj().Name() + "." + name
				}
			}
			return v, name
		}
	case *ast.IndexExpr:
		if obj, name := syncRecvClass(pass, e.X); obj != nil {
			return obj, name + "[i]"
		}
	case *ast.StarExpr:
		return syncRecvClass(pass, e.X)
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return nil, ""
		}
		if named, ok := derefType(v.Type()).(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			// l.Lock() through an embedded primitive: unify every instance
			// of the embedding type.
			return named.Obj(), named.Obj().Name()
		}
		return v, v.Name()
	}
	return nil, ""
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// report finds strongly connected components of the acquisition graph
// and reports one inversion per component, anchored at the latest
// acquisition site inside it.
func (lc *lockOrderChecker) report() {
	if len(lc.edges) == 0 {
		return
	}
	var nodes []types.Object
	seen := map[types.Object]bool{}
	for k := range lc.edges {
		for _, o := range []types.Object{k.from, k.to} {
			if !seen[o] {
				seen[o] = true
				nodes = append(nodes, o)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if lc.names[nodes[i]] != lc.names[nodes[j]] {
			return lc.names[nodes[i]] < lc.names[nodes[j]]
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
	idx := map[types.Object]int{}
	for i, o := range nodes {
		idx[o] = i
	}
	adj := make([][]int, len(nodes))
	for k := range lc.edges {
		adj[idx[k.from]] = append(adj[idx[k.from]], idx[k.to])
	}
	for _, a := range adj {
		sort.Ints(a)
	}
	for _, scc := range stronglyConnected(adj) {
		if len(scc) < 2 {
			continue
		}
		lc.reportSCC(nodes, adj, scc)
	}
}

func (lc *lockOrderChecker) reportSCC(nodes []types.Object, adj [][]int, scc []int) {
	in := map[int]bool{}
	for _, n := range scc {
		in[n] = true
	}
	// The representative edge: the latest acquisition inside the cycle.
	var repFrom, repTo int
	var repPos token.Pos
	for _, u := range scc {
		for _, v := range adj[u] {
			if !in[v] {
				continue
			}
			if p := lc.edges[lockEdgeKey{nodes[u], nodes[v]}]; p > repPos {
				repFrom, repTo, repPos = u, v, p
			}
		}
	}
	// Close the cycle: a path from repTo back to repFrom inside the SCC.
	path := sccPath(adj, in, repTo, repFrom)
	cycle := lc.names[nodes[repFrom]] + " → " + lc.names[nodes[repTo]]
	for _, n := range path[1:] {
		cycle += " → " + lc.names[nodes[n]]
	}
	counterPos := lc.edges[lockEdgeKey{nodes[path[0]], nodes[path[1]]}]
	if lc.pass.waived(repPos, lockOrderWaiver) {
		return
	}
	lc.pass.Reportf(repPos,
		"lock order inversion: %s is acquired while holding %s, but line %d nests them in the opposite order (cycle %s); pick one global acquisition order (//acp:lockorder-ok <why> to waive)",
		lc.names[nodes[repTo]], lc.names[nodes[repFrom]],
		lc.pass.Fset.Position(counterPos).Line, cycle)
}

// sccPath returns a node path from src to dst using only edges inside
// the component (both ends included).
func sccPath(adj [][]int, in map[int]bool, src, dst int) []int {
	prev := map[int]int{src: -1}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			break
		}
		for _, v := range adj[u] {
			if !in[v] {
				continue
			}
			if _, ok := prev[v]; !ok {
				prev[v] = u
				stack = append(stack, v)
			}
		}
	}
	var rev []int
	for n := dst; n != -1; n = prev[n] {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// stronglyConnected is Tarjan's algorithm; components come out in a
// deterministic order given deterministic adjacency.
func stronglyConnected(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strong(v)
		}
	}
	return comps
}
