package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestGoroutine(t *testing.T) {
	linttest.Run(t, "testdata/src/goroutine", lint.Goroutine)
}
