// Package hotpath exercises the acphotpath analyzer: allocation-causing
// constructs inside functions opted in with //acp:hotpath.
package hotpath

import "fmt"

type scratch struct {
	buf      []int
	selected []int
}

type walker struct {
	sc scratch
}

func sink(x any) {}

func visit(f func()) { f() }

// goodWalk reuses composer-lifetime scratch storage; nothing here
// allocates in steady state.
//
//acp:hotpath
func (w *walker) goodWalk(vals []int) []int {
	out := w.sc.buf[:0]
	for _, v := range vals {
		out = append(out, v)
	}
	w.sc.buf = out
	return out
}

// notHot is identical to badAppend but unannotated: the analyzer must
// ignore it.
func notHot(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

// badSprintf formats on the hot path.
//
//acp:hotpath
func badSprintf(id int) string {
	return fmt.Sprintf("probe-%d", id) // want `fmt\.Sprintf allocates`
}

// badClosure captures a function-local variable.
//
//acp:hotpath
func badClosure() func() int {
	total := 0
	f := func() int { // want `closure captures total`
		total++
		return total
	}
	return f
}

// waivedClosure is the same shape with a justified waiver.
//
//acp:hotpath
func waivedClosure() {
	n := 0
	visit(func() { n++ }) //acp:alloc-ok fixture: callee invokes the closure inline and never retains it
}

// badAppend grows a fresh local backing array every call.
//
//acp:hotpath
func badAppend(vals []int) []int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v) // want `append to non-scratch destination out`
	}
	return out
}

// badConcat builds a string at runtime.
//
//acp:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// constConcat folds at compile time and must not be flagged.
//
//acp:hotpath
func constConcat() string {
	return "probe" + "-walk"
}

// badBoxReturn boxes an int into the any result.
//
//acp:hotpath
func badBoxReturn(v int) any {
	return v // want `value of type int boxed into any`
}

// badBoxArg boxes a wide value into an interface parameter.
//
//acp:hotpath
func badBoxArg(v [4]float64) {
	sink(v) // want `value of type \[4\]float64 boxed into any`
}

// pointerArg passes a pointer-shaped value; no box, no finding.
//
//acp:hotpath
func pointerArg(w *walker) {
	sink(w)
}

// badCompositeAddr heap-allocates a fresh struct.
//
//acp:hotpath
func badCompositeAddr() *scratch {
	return &scratch{} // want `&composite literal allocates`
}

// badNew heap-allocates too.
//
//acp:hotpath
func badNew() *scratch {
	return new(scratch) // want `new\(\.\.\.\) allocates`
}
