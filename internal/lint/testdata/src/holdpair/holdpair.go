// Package holdpair exercises the acpholdpair analyzer: failure paths
// that abandon an attempt without releasing the holds it created. The
// ledger stub mirrors internal/state's Hold*/Release* surface — the
// analyzer matches by method name, so any type with these names is
// checked the same way.
package holdpair

type ledger struct{}

func (l *ledger) HoldNode(owner int64, node int) bool { return true }

func (l *ledger) HoldLink(owner int64, link int) bool { return true }

func (l *ledger) HoldNodeTracked(owner int64, node int) (ok, created bool) { return true, true }

func (l *ledger) HoldLinkTracked(owner int64, link int) (ok, created bool) { return true, true }

func (l *ledger) ReleaseNodeHold(owner int64, node int) {}

func (l *ledger) ReleaseLinkHold(owner int64, link int) {}

func (l *ledger) ReleaseOwner(owner int64) {}

// goodWalk mirrors the fixed extendProbe: a candidate that fails its
// link holds rolls back exactly what it created before moving on.
func goodWalk(l *ledger, cands []int, links [][]int) []int {
	kept := cands[:0]
	for i, c := range cands {
		okNode, createdNode := l.HoldNodeTracked(1, c)
		if !okNode {
			continue
		}
		held := true
		var heldLinks []int
		for _, link := range links[i] {
			okLink, createdLink := l.HoldLinkTracked(1, link)
			if !okLink {
				held = false
				break
			}
			if createdLink {
				heldLinks = append(heldLinks, link)
			}
		}
		if !held {
			if createdNode {
				l.ReleaseNodeHold(1, c)
			}
			for _, link := range heldLinks {
				l.ReleaseLinkHold(1, link)
			}
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// badWalk is the PR 4 extendProbe bug shape: the node hold survives the
// continue when the candidate's links cannot all be held.
func badWalk(l *ledger, cands []int, links [][]int) []int {
	kept := cands[:0]
	for i, c := range cands {
		okNode, _ := l.HoldNodeTracked(1, c)
		if !okNode {
			continue
		}
		held := true
		for _, link := range links[i] {
			if ok := l.HoldLink(1, link); !ok {
				held = false
				break
			}
		}
		if !held {
			continue // want `continue may leak the hold created by HoldNodeTracked`
		}
		kept = append(kept, c)
	}
	return kept
}

// badComposition is the holdComposition shape: node holds from the first
// loop leak when a later link hold fails.
func badComposition(l *ledger, nodes, links []int) bool {
	for _, n := range nodes {
		if !l.HoldNode(1, n) {
			return false
		}
	}
	for _, link := range links {
		if !l.HoldLink(1, link) {
			return false // want `failure return may leak the hold created by HoldNode`
		}
	}
	return true
}

// goodComposition rolls the whole owner back on every failure exit.
func goodComposition(l *ledger, nodes, links []int) bool {
	for _, n := range nodes {
		if !l.HoldNode(1, n) {
			l.ReleaseOwner(1)
			return false
		}
	}
	for _, link := range links {
		if !l.HoldLink(1, link) {
			l.ReleaseOwner(1)
			return false
		}
	}
	return true
}

// deferredRelease covers every exit with one deferred rollback.
func deferredRelease(l *ledger, nodes []int) bool {
	defer l.ReleaseOwner(1)
	for _, n := range nodes {
		if !l.HoldNode(1, n) {
			return false
		}
	}
	return true
}

// waivedComposition is badComposition with a documented compensating
// release at the call site.
//
//acp:holdpair-ok fixture: the only caller runs ReleaseOwner when this returns false
func waivedComposition(l *ledger, nodes, links []int) bool {
	for _, n := range nodes {
		if !l.HoldNode(1, n) {
			return false
		}
	}
	for _, link := range links {
		if !l.HoldLink(1, link) {
			return false
		}
	}
	return true
}
