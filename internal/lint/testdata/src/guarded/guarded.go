// Package guarded exercises the acpguarded analyzer: struct fields whose
// doc comment declares "guarded by <mu>" may only be accessed while the
// guard is demonstrably held.
package guarded

import "sync"

type registry struct {
	mu sync.RWMutex
	// counters indexes counters by name. guarded by mu
	counters map[string]int
	// unrelated carries no guard declaration and is never flagged.
	unrelated int
}

func (r *registry) get(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}

func (r *registry) add(name string) {
	r.mu.Lock()
	r.counters[name]++
	r.mu.Unlock()
}

func (r *registry) racyGet(name string) int {
	return r.counters[name] // want `counters is guarded by mu`
}

func (r *registry) racyLate(name string) int {
	n := r.counters[name] // want `counters is guarded by mu`
	r.mu.RLock()
	defer r.mu.RUnlock()
	return n + r.counters[name]
}

// bumpLocked follows the *Locked convention: callers hold mu.
func (r *registry) bumpLocked(name string) {
	r.counters[name]++
}

func (r *registry) setupWaived(name string) {
	r.counters[name] = 0 //acp:guarded-ok fixture: single-goroutine construction path
}

func (r *registry) touchUnrelated() {
	r.unrelated++
}
