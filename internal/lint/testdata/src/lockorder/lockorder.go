// Package lockorder exercises acplockorder: cycles in the per-package
// mutex-acquisition graph are inversions that deadlock under
// interleaving; consistent orders, handoffs, and striped same-class
// nesting must stay silent.
package lockorder

import "sync"

// --- true positive 1: direct two-lock inversion across functions -----

type Ledger struct {
	mu    sync.Mutex
	total int
}

type Book struct {
	mu   sync.Mutex
	rows int
}

func creditBoth(l *Ledger, b *Book) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rows++
	l.total++
}

func auditBoth(l *Ledger, b *Book) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l.mu.Lock() // want `lock order inversion: Ledger\.mu is acquired while holding Book\.mu`
	defer l.mu.Unlock()
	l.total++
}

// --- true positive 2: inversion through a summarized callee ----------

type Cache struct {
	mu   sync.Mutex
	hits int
}

type Stats struct {
	mu    sync.Mutex
	evict int
}

func (s *Stats) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evict++
}

func (c *Cache) evictOne(s *Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits--
	s.bump() // acquires Stats.mu while holding Cache.mu
}

func (s *Stats) flush(c *Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.mu.Lock() // want `lock order inversion: Cache\.mu is acquired while holding Stats\.mu`
	c.hits = 0
	c.mu.Unlock()
}

// --- true positive 3: three-lock cycle -------------------------------

type Ingest struct{ mu sync.Mutex }
type Route struct{ mu sync.Mutex }
type Sink struct{ mu sync.Mutex }

func ingestThenRoute(i *Ingest, r *Route) {
	i.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	i.mu.Unlock()
}

func routeThenSink(r *Route, s *Sink) {
	r.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.Unlock()
}

func sinkThenIngest(s *Sink, i *Ingest) {
	s.mu.Lock()
	i.mu.Lock() // want `cycle Sink\.mu → Ingest\.mu → Route\.mu → Sink\.mu`
	i.mu.Unlock()
	s.mu.Unlock()
}

// --- negative 1: the same pair is always nested in one order ---------

type Pool struct{ mu sync.Mutex }
type Meter struct{ mu sync.RWMutex }

func poolThenMeterWrite(p *Pool, m *Meter) {
	p.mu.Lock()
	m.mu.Lock()
	m.mu.Unlock()
	p.mu.Unlock()
}

func poolThenMeterRead(p *Pool, m *Meter) {
	p.mu.Lock()
	m.mu.RLock()
	m.mu.RUnlock()
	p.mu.Unlock()
}

// --- negative 2: handoff, release before the next acquire ------------

func meterThenPoolHandoff(p *Pool, m *Meter) {
	m.mu.Lock()
	m.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// --- negative 3: striped locks are one class, not a self-cycle -------

type Striped struct {
	mu   []sync.Mutex
	vals []int
}

func (s *Striped) move(i, j int) {
	s.mu[i].Lock()
	s.mu[j].Lock()
	s.vals[j] += s.vals[i]
	s.vals[i] = 0
	s.mu[j].Unlock()
	s.mu[i].Unlock()
}

// --- waived inversion: justified escape hatch stays silent -----------

type Primary struct{ mu sync.Mutex }
type Standby struct{ mu sync.Mutex }

func promote(p *Primary, s *Standby) {
	p.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.Unlock()
}

func demote(p *Primary, s *Standby) {
	s.mu.Lock()
	p.mu.Lock() //acp:lockorder-ok demote only runs in single-threaded recovery, promote is fenced off
	p.mu.Unlock()
	s.mu.Unlock()
}
