// Package goroutine exercises acpgoroutine: every spawn must be tied
// to a shutdown path (WaitGroup add/done, channel receive, or a
// Close/Stop-bounded owner); tracked workers, drainers, and owned
// server loops stay silent.
package goroutine

import "sync"

// --- true positive 1: fire-and-forget literal mutating shared state --

func leakPlainSpawn(n *int) {
	go func() { // want `goroutine is not tied to a shutdown path`
		*n++
	}()
}

// --- true positive 2: Done without Add before the spawn --------------

func leakAddAfterSpawn(wg *sync.WaitGroup, n *int) {
	go func() { // want `goroutine is not tied to a shutdown path`
		defer wg.Done()
		*n++
	}()
	wg.Add(1) // too late: Wait can pass before the goroutine registers
}

// --- true positive 3: named worker with no lifecycle facts -----------

func spinForever() {
	for {
	}
}

func leakNamedWorker() {
	go spinForever() // want `goroutine is not tied to a shutdown path`
}

// --- negative 1: WaitGroup-tracked literal ---------------------------

func trackedSpawn(n *int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		*n++
	}()
	wg.Wait()
}

// --- negative 2: Done through a summarized callee --------------------

type pool struct {
	wg   sync.WaitGroup
	work chan int
}

func (p *pool) run() {
	defer p.wg.Done()
	for range p.work {
	}
}

func (p *pool) start() {
	p.wg.Add(1)
	go p.run()
}

// --- negative 3: blocked on a done-channel receive -------------------

func watcher(done chan struct{}, n *int) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				*n++
			}
		}
	}()
}

// --- negative 4: drainer bounded by joining the tracked workers ------

func closer(wg *sync.WaitGroup, out chan int) {
	go func() {
		wg.Wait()
		close(out)
	}()
}

// --- negative 5: single call bounded by a closeable owner ------------

type srv struct{ closed bool }

func (s *srv) serve() {
	for !s.closed {
	}
}

func (s *srv) Close() { s.closed = true }

func spawnServer(s *srv) {
	go s.serve()
}

// --- waived fire-and-forget ------------------------------------------

func waivedSpawn(n *int) {
	//acp:goroutine-ok best-effort cache warmup, process lifetime bounds it
	go func() {
		*n++
	}()
}
