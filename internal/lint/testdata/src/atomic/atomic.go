// Package atomic exercises acpatomic: memory that is ever touched via
// sync/atomic must never be accessed plainly, and 64-bit atomic struct
// fields must be 8-byte aligned on 32-bit targets. Sanctioned atomic
// calls, value copies, and typed atomics stay silent.
package atomic

import "sync/atomic"

// --- true positive 1: plain read of an atomically-updated field ------

type counters struct {
	probes int64
	walks  int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.probes, 1)
}

func (c *counters) loadOK() int64 {
	return atomic.LoadInt64(&c.probes)
}

func (c *counters) racyRead() int64 {
	return c.probes // want `counters\.probes is accessed with sync/atomic elsewhere but read plainly here`
}

// --- true positive 2: plain write of an atomically-updated field -----

func (c *counters) reset() {
	atomic.AddInt64(&c.walks, 1)
	c.walks = 0 // want `counters\.walks is accessed with sync/atomic elsewhere but written plainly here`
}

// --- true positive 3: misaligned 64-bit atomic field on 386 ----------

type badLayout struct {
	running bool
	ops     int64 // want `64-bit atomic field badLayout\.ops sits at offset 4 of badLayout on 32-bit targets`
}

func (b *badLayout) add() {
	atomic.AddInt64(&b.ops, 1)
}

// --- true positive 4: plain indexed read of an atomic slice element --

type perComp struct {
	counts []int64
}

func (p *perComp) add(i int) {
	atomic.AddInt64(&p.counts[i], 1)
}

func (p *perComp) racyAt(i int) int64 {
	return p.counts[i] // want `perComp\.counts\[i\] is accessed with sync/atomic elsewhere but read plainly here`
}

// --- negative 1: every access goes through sync/atomic ---------------

type cleanCounters struct {
	ops int64
}

func (c *cleanCounters) add()        { atomic.AddInt64(&c.ops, 1) }
func (c *cleanCounters) load() int64 { return atomic.LoadInt64(&c.ops) }
func (c *cleanCounters) swap() int64 { return atomic.SwapInt64(&c.ops, 0) }

// --- negative 2: value copies are private ----------------------------

// snapshot returns a value copy; plain access on the copy is fine.
func (c *counters) snapshot() counters {
	return counters{
		probes: atomic.LoadInt64(&c.probes),
		walks:  atomic.LoadInt64(&c.walks),
	}
}

func (c counters) total() int64 {
	return c.probes + c.walks // value receiver: a private copy
}

func diff(a, b counters) int64 {
	return a.probes - b.probes
}

// --- negative 3: typed atomics are always fine -----------------------

type typed struct {
	flag bool
	ops  atomic.Int64 // compiler-aligned, plain access impossible
}

func (t *typed) add() { t.ops.Add(1) }

// --- negative 4: aligned 64-bit atomic field -------------------------

type goodLayout struct {
	ops     int64 // offset 0: aligned on every target
	running bool
}

func (g *goodLayout) add() { atomic.AddInt64(&g.ops, 1) }

// --- waived plain read ------------------------------------------------

type waivedCounters struct {
	ops int64
}

func (w *waivedCounters) add() { atomic.AddInt64(&w.ops, 1) }

func (w *waivedCounters) lastWins() int64 {
	return w.ops //acp:atomic-ok read only after the worker pool joins, publication is via Wait
}
