// Package determinism exercises the acpdeterminism analyzer: wall-clock
// time calls, the process-global math/rand functions, and map iteration
// leaking its order into observable output. The tests temporarily add
// this package's import path to lint.DeterminismScope.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Tracer mimics the obs tracer: methods on a type named Tracer count as
// event emission for the map-range check.
type Tracer struct{}

// Emit records one event.
func (*Tracer) Emit(k string) {}

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func timeMath(a, b time.Time) bool {
	return a.After(b) // time.Time methods are pure value comparisons
}

func waivedClock() time.Time {
	return time.Now() //acp:nondeterminism-ok fixture exercises the escape hatch
}

func waiverWithoutReason() time.Time {
	return time.Now() //acp:nondeterminism-ok // want `acp:nondeterminism-ok requires a justification`
}

func globalRand(rng *rand.Rand) int {
	injected := rng.Intn(10)           // methods on an injected *rand.Rand are fine
	src := rand.New(rand.NewSource(1)) // seeded constructors are fine
	_ = src
	return injected + rand.Intn(10) // want `rand\.Intn uses the process-global random source`
}

func mapAppendUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append inside range over map leaks iteration order`
	}
	return out
}

func mapAppendSorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort is the approved idiom
	}
	sort.Ints(keys)
	return keys
}

func mapFloatAccum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

func mapIntCount(m map[int]int) int {
	n := 0
	for range m {
		n++ // integer counting is order-independent
	}
	return n
}

func mapIndexedByKey(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v // disjoint slots per iteration: order-independent
	}
}

func mapEmit(m map[int]int, tr *Tracer) {
	for k := range m {
		_ = k
		tr.Emit("visit") // want `trace event Tracer\.Emit emitted inside range over map`
	}
}

func mapWaived(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { //acp:nondeterminism-ok fixture: summands are exact powers of two
		sum += v
	}
	return sum
}
