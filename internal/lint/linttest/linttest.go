// Package linttest is a miniature analysistest: it loads a fixture
// package from a testdata directory, runs one analyzer over it, and
// matches the diagnostics against `// want "regexp"` comments on the
// offending lines. Unmatched expectations and unexpected diagnostics
// both fail the test.
//
// Fixture packages live under testdata/src/<name> and are real,
// compiling packages of the enclosing module (go build ./... skips
// testdata directories, so intentionally bad code never breaks the
// build). They are loaded through the same go list -export pipeline as
// production runs, so the test exercises the loader too.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want entry: a position and a regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir (a path relative to the
// caller's working directory, e.g. "testdata/src/determinism") and
// applies the analyzer, comparing diagnostics against // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants extracts the // want expectations from every comment in
// the fixture. Multiple quoted regexps on one line each expect one
// diagnostic.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted pulls the backquote- or doublequote-delimited patterns out
// of a want payload: `foo` "bar" -> [foo bar].
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q := s[0]
		if q != '`' && q != '"' {
			return out
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[2+end:]
	}
}

func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.hit || w.line != line {
			continue
		}
		if filepath.Base(w.file) != filepath.Base(file) {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
