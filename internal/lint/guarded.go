package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Guarded checks mutex discipline declared in field documentation: a
// struct field whose doc or line comment says "guarded by <mu>" may only
// be accessed from functions that demonstrably hold <mu> — a
// <recv>.<mu>.Lock() or RLock() call lexically precedes the access in
// the same function — or from helpers following the *Locked naming
// convention (callers hold the lock). DFaaS-style distributed node loops
// show how quickly undisciplined shared state creeps in; this pins the
// discipline at the field declaration.
//
// Composite-literal construction (the New* pattern) does not read or
// write through a selector and is inherently pre-publication, so it is
// not flagged.
var Guarded = &Analyzer{
	Name: "acpguarded",
	Doc: "fields documented `guarded by <mu>` may only be accessed holding <mu> " +
		"(waive with //acp:guarded-ok <why>)",
	Run: runGuarded,
}

const guardWaiver = "guarded-ok"

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field and its guard's name.
type guardedField struct {
	mu   string
	decl token.Pos
}

func runGuarded(pass *Pass) error {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guards)
		}
	}
	return nil
}

// collectGuardedFields maps each field *types.Var with a "guarded by"
// comment to its guard.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	guards := make(map[*types.Var]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardNameFor(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guardedField{mu: mu, decl: name.Pos()}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardNameFor(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardedField) {
	lockedByName := strings.HasSuffix(fd.Name.Name, "Locked")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		g, guarded := guards[v]
		if !guarded {
			return true
		}
		if lockedByName {
			return true
		}
		if holdsGuard(pass, fd, g.mu, sel.Pos()) {
			return true
		}
		if pass.waived(sel.Pos(), guardWaiver) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s is guarded by %s, but no %s.Lock()/RLock() precedes this access in %s; lock the mutex, move the access into a *Locked helper, or waive with //acp:guarded-ok <why>",
			sel.Sel.Name, g.mu, g.mu, fd.Name.Name)
		return true
	})
}

// holdsGuard reports whether a call of the form <...>.<mu>.Lock() or
// <...>.<mu>.RLock() appears in fd lexically before pos. This is the
// same lexical approximation gopls' users rely on with staticcheck-style
// checkers: sound enough to catch missing-lock bugs, loose enough not to
// demand a full lockset analysis.
func holdsGuard(pass *Pass, fd *ast.FuncDecl, mu string, pos token.Pos) bool {
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			if recv.Sel.Name == mu {
				held = true
			}
		case *ast.Ident:
			if recv.Name == mu {
				held = true
			}
		}
		return true
	})
	return held
}
