// Package lint implements acplint, a suite of custom static analyzers
// that machine-check the repository's load-bearing invariants: probe-walk
// determinism, hot-path allocation hygiene, hold/rollback pairing on the
// transient-resource ledger, and mutex-guarded field access.
//
// The analyzer model mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) but is built on the standard library alone: the
// container has no module cache or network, so x/tools cannot be a
// dependency. Analyzers here are intraprocedural and need only parsed
// files plus go/types information, which the stdlib provides.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check, mirroring the x/tools analysis
// framework's type of the same name.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command lines.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	notes map[*ast.File]*fileNotes
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, HoldPair, Guarded, LockOrder, Goroutine, Atomic}
}

// ---------------------------------------------------------------------------
// acp:* annotations
//
// Escape hatches and opt-ins are ordinary line comments:
//
//	//acp:hotpath                      opt a function into alloc hygiene
//	//acp:nondeterminism-ok <why>      waive a determinism finding
//	//acp:alloc-ok <why>               waive a hot-path allocation finding
//	//acp:holdpair-ok <why>            waive a hold/rollback finding
//	//acp:guarded-ok <why>             waive a guarded-field finding
//	//acp:lockorder-ok <why>           waive a lock-order inversion finding
//	//acp:goroutine-ok <why>           waive a goroutine-lifecycle finding
//	//acp:atomic-ok <why>              waive an atomic-consistency finding
//
// A waiver applies when it sits on the offending line, on the line
// directly above it, or in the enclosing function's doc comment. All
// waivers except acp:hotpath require a non-empty justification.

var annotationRe = regexp.MustCompile(`acp:([a-z-]+)(?:\s+(.*))?`)

type annotation struct {
	name    string
	reason  string
	present bool
}

// parseAnnotation extracts an acp:<name> annotation from comment text.
// The justification stops at a nested "//" so that trailing comments
// (like the test fixtures' // want markers) are not read as a reason.
func parseAnnotation(text string) (annotation, bool) {
	m := annotationRe.FindStringSubmatch(text)
	if m == nil {
		return annotation{}, false
	}
	reason := m[2]
	if i := strings.Index(reason, "//"); i >= 0 {
		reason = reason[:i]
	}
	return annotation{name: m[1], reason: strings.TrimSpace(reason), present: true}, true
}

type fileNotes struct {
	// byLine maps a source line to the acp: annotations on it.
	byLine map[int][]annotation
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

func (p *Pass) notesFor(f *ast.File) *fileNotes {
	if p.notes == nil {
		p.notes = make(map[*ast.File]*fileNotes)
	}
	if n, ok := p.notes[f]; ok {
		return n
	}
	n := &fileNotes{byLine: make(map[int][]annotation)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			a, ok := parseAnnotation(text)
			if !ok {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			n.byLine[line] = append(n.byLine[line], a)
		}
	}
	p.notes[f] = n
	return n
}

// annotationAt looks for an acp:<name> annotation covering pos: on the
// same line, on the line directly above, or in the doc comment of the
// function enclosing pos.
func (p *Pass) annotationAt(pos token.Pos, name string) annotation {
	f := p.fileFor(pos)
	if f == nil {
		return annotation{}
	}
	notes := p.notesFor(f)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, a := range notes.byLine[l] {
			if a.name == name {
				return a
			}
		}
	}
	if fd := enclosingFuncDecl(f, pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if a, ok := parseAnnotation(c.Text); ok && a.name == name {
				return a
			}
		}
	}
	return annotation{}
}

// waived reports whether a finding at pos is waived by acp:<name>. A
// waiver without a justification is itself reported: the escape hatch
// must say why the code is exempt.
func (p *Pass) waived(pos token.Pos, name string) bool {
	a := p.annotationAt(pos, name)
	if !a.present {
		return false
	}
	if a.reason == "" {
		p.Reportf(pos, "acp:%s requires a justification (write //acp:%s <why>)", name, name)
		return true
	}
	return true
}

func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// funcHasAnnotation reports whether the function's doc comment carries
// acp:<name> (e.g. acp:hotpath).
func funcHasAnnotation(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		m := annotationRe.FindStringSubmatch(c.Text)
		if m != nil && m[1] == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// small shared AST/type helpers

// calleeObj resolves a call's callee to its types object (a *types.Func
// for ordinary and method calls), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent returns the leftmost identifier of a selector/index chain,
// e.g. sc for sc.children[depth]. Nil when the expression is rooted in a
// call or literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFloaty reports whether t is built on floating point: a float, a
// complex, or a struct any of whose fields is floaty. Accumulating such
// values in map-iteration order makes the sum run-order dependent.
func isFloaty(t types.Type) bool {
	seen := map[types.Type]bool{}
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&(types.IsFloat|types.IsComplex) != 0
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(t)
}

// pathInScope reports whether a package import path falls under any of
// the scope fragments (segment-aware substring match, so "internal/core"
// matches "repro/internal/core" but not "internal/corelib").
func pathInScope(path string, scope []string) bool {
	padded := "/" + path + "/"
	for _, s := range scope {
		if strings.Contains(padded, "/"+strings.Trim(s, "/")+"/") {
			return true
		}
	}
	return false
}
