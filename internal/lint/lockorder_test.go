package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/lockorder", lint.LockOrder)
}
