package lint

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestWaiverAudit walks every live Go file in the repository and fails
// if any //acp:*-ok waiver lacks a justification. The analyzers report
// an unjustified waiver only when it actually intercepts a finding;
// this audit catches the rest — stale or speculative waivers that sit
// on clean lines would otherwise silently arm an escape hatch. Fixture
// trees under testdata are exempt: they deliberately include an
// unjustified waiver to pin the "requires a justification" diagnostic.
func TestWaiverAudit(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	audited := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Errorf("parsing %s: %v", path, err)
			return nil
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAnnotation(c.Text)
				if !ok || !strings.HasSuffix(a.name, "-ok") {
					continue
				}
				audited++
				if a.reason == "" {
					t.Errorf("%s: //acp:%s lacks a justification — every waiver must say why",
						fset.Position(c.Pos()), a.name)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if audited == 0 {
		t.Fatal("audit found no waivers at all; is the repo root path wrong?")
	}
	t.Logf("audited %d waivers", audited)
}
