package lint

// cfg.go is the shared intraprocedural flow layer used by the
// flow-sensitive analyzers (acpholdpair, acplockorder, acpgoroutine).
//
// buildCFG lowers a function body to a control-flow graph of basic
// blocks holding the statements and branch-condition expressions in
// evaluation order. The graph is deliberately *acyclic*: a loop body is
// represented once, with the after-loop block fed from the body-end
// state rather than from a fixpoint over back edges. That encodes the
// repo's pinned loop policy (see HoldPair's doc comment): a loop body
// is analysed once per entry state, holds or locks that survive a full
// iteration are considered settled, and the zero-iteration path is
// deliberately dropped — the release-loop idiom iterates exactly the
// resources that were created, so "ran zero times" coincides with
// "nothing to release". Because every edge points forward (to a
// higher-indexed block, by construction), runFlow analyses the whole
// function in a single pass over the blocks in index order — no
// worklist, no widening.
//
// break, continue, goto, and fallthrough are recorded as ordinary
// nodes that fall through to the next statement. This matches the
// historical walker the analyzers were validated against: the join at
// the loop (or switch) exit over-approximates the abandoned path, and
// analyzers that care about the abandon itself (holdpair's continue
// check) observe it through the onBranch hook.

import (
	"go/ast"
)

// cfgEdge is one successor edge. When cond is non-nil the edge is taken
// only if cond evaluates to val, and flow drivers may refine the state
// accordingly (e.g. an if statement's then/else edges).
type cfgEdge struct {
	to   *cfgBlock
	cond ast.Expr
	val  bool
}

// cfgBlock is a straight-line run of AST nodes (statements and
// branch-condition expressions) in evaluation order.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge
}

// funcCFG is the control-flow graph of one function body. blocks[0] is
// the entry; blocks are topologically ordered (every edge goes from a
// lower index to a higher one).
type funcCFG struct {
	blocks []*cfgBlock
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
}

// buildCFG lowers body (a FuncDecl or FuncLit body) to its CFG.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	b.cur = b.newBlock()
	b.stmt(body)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, val bool) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, val: val})
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.newBlock()
		b.edge(head, then, s.Cond, true)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els, s.Cond, false)
			b.cur = els
			b.stmt(s.Else)
			elseEnd := b.cur
			join := b.newBlock()
			b.edge(thenEnd, join, nil, false)
			b.edge(elseEnd, join, nil, false)
			b.cur = join
		} else {
			join := b.newBlock()
			b.edge(head, join, s.Cond, false)
			b.edge(thenEnd, join, nil, false)
			b.cur = join
		}
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond) // no refinement on loop conditions: the body may run 0..n times
		head := b.cur
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.cur = body
		b.stmt(s.Body)
		if s.Post != nil {
			b.add(s.Post)
		}
		bodyEnd := b.cur
		after := b.newBlock()
		b.edge(bodyEnd, after, nil, false)
		b.cur = after
	case *ast.RangeStmt:
		b.add(s.X)
		head := b.cur
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.cur = body
		b.stmt(s.Body)
		bodyEnd := b.cur
		after := b.newBlock()
		b.edge(bodyEnd, after, nil, false)
		b.cur = after
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Tag)
		b.caseBodies(s.Body, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.caseBodies(s.Body, s.Assign)
	case *ast.SelectStmt:
		b.caseBodies(s.Body, nil)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = b.newBlock() // code after a return is unreachable
	default:
		// ExprStmt, AssignStmt, DeclStmt, DeferStmt, GoStmt, SendStmt,
		// IncDecStmt, BranchStmt, EmptyStmt: straight-line nodes.
		b.add(s)
	}
}

// caseBodies lowers a switch/type-switch/select body: every clause is
// entered from the head, and the join after the statement merges every
// clause end plus the head itself (no case may match; for select, the
// head edge over-approximates "blocks forever").
func (b *cfgBuilder) caseBodies(body *ast.BlockStmt, prologue ast.Stmt) {
	if prologue != nil {
		b.add(prologue)
	}
	head := b.cur
	var ends []*cfgBlock
	for _, cl := range body.List {
		var stmts []ast.Stmt
		var comm ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			comm = cl.Comm
			stmts = cl.Body
		}
		cb := b.newBlock()
		b.edge(head, cb, nil, false)
		b.cur = cb
		if comm != nil {
			b.stmt(comm)
		}
		for _, st := range stmts {
			b.stmt(st)
		}
		ends = append(ends, b.cur)
	}
	join := b.newBlock()
	b.edge(head, join, nil, false)
	for _, e := range ends {
		b.edge(e, join, nil, false)
	}
	b.cur = join
}

// flowHooks parameterizes runFlow with one analyzer's abstract domain.
// All hooks except clone, join, and transfer are optional.
type flowHooks[S any] struct {
	// clone copies a state so that branches evolve independently.
	clone func(S) S
	// join merges src into dst at a control-flow merge and returns the
	// merged state (it may mutate and return dst).
	join func(dst, src S) S
	// transfer interprets one node (a statement or a branch-condition
	// expression), mutating the state in place.
	transfer func(n ast.Node, s S)
	// refine narrows a state along a conditional edge, assuming cond
	// evaluated to val.
	refine func(cond ast.Expr, val bool, s S)
	// onReturn runs after transfer at every return statement.
	onReturn func(ret *ast.ReturnStmt, s S)
	// onBranch runs at every break/continue/goto/fallthrough, before the
	// state falls through to the next statement.
	onBranch func(br *ast.BranchStmt, s S)
}

// runFlow runs a forward dataflow analysis over g starting from entry.
// Because the CFG is acyclic and topologically ordered, one pass in
// index order reaches the fixed point.
func runFlow[S any](g *funcCFG, entry S, h flowHooks[S]) {
	in := make([]S, len(g.blocks))
	reached := make([]bool, len(g.blocks))
	in[0], reached[0] = entry, true
	for _, blk := range g.blocks {
		if !reached[blk.index] {
			continue
		}
		s := in[blk.index]
		for _, n := range blk.nodes {
			h.transfer(n, s)
			switch n := n.(type) {
			case *ast.ReturnStmt:
				if h.onReturn != nil {
					h.onReturn(n, s)
				}
			case *ast.BranchStmt:
				if h.onBranch != nil {
					h.onBranch(n, s)
				}
			}
		}
		for _, e := range blk.succs {
			out := h.clone(s)
			if e.cond != nil && h.refine != nil {
				h.refine(e.cond, e.val, out)
			}
			if !reached[e.to.index] {
				in[e.to.index], reached[e.to.index] = out, true
			} else {
				in[e.to.index] = h.join(in[e.to.index], out)
			}
		}
	}
}
