package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestGuarded(t *testing.T) {
	linttest.Run(t, "testdata/src/guarded", lint.Guarded)
}
