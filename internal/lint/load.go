package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go tool, asking it to compile
// export data for every dependency, then parses and type-checks the
// matched packages from source. Dependencies are imported from export
// data, so only the packages under analysis are re-type-checked. The
// go tool never needs the network: all dependencies are stdlib or
// module-local.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			roots = append(roots, &q)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	var out []*Package
	for _, root := range roots {
		if root.Error != nil {
			return nil, fmt.Errorf("package %s: %s", root.ImportPath, root.Error.Err)
		}
		if len(root.GoFiles) == 0 {
			continue
		}
		lookup := exportLookup(exports, root.ImportMap)
		pkg, err := Check(fset, root.ImportPath, root.Dir, root.GoFiles, lookup)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// exportLookup builds the gc importer's lookup function over a map from
// import path to export-data file, honouring a per-package ImportMap
// (vendoring or module aliasing; usually the identity).
func exportLookup(exports, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Check parses and type-checks one package from source, importing its
// dependencies through lookup (gc export data). It is shared by Load
// and by cmd/acplint's `go vet -vettool` unitchecker mode, whose vet.cfg
// hands us exactly these inputs.
func Check(fset *token.FileSet, pkgPath, dir string, goFiles []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect everything; first error returned below
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
