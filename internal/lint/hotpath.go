package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces source-level allocation hygiene on functions opted in
// with //acp:hotpath in their doc comment. It complements the runtime
// AllocsPerRun guards: the benchmarks catch a regression's symptom at
// bench time, the analyzer names the offending construct at review time.
//
// Flagged constructs: fmt.* calls (interface boxing plus formatting
// buffers), closures that capture local variables, append to a slice
// that is not scratch-derived, &T{...} / new(T), non-constant string
// concatenation, and implicit boxing of value types into interfaces.
// Amortised growth (make under a capacity check) is deliberately not
// flagged — that is exactly how the walk scratch buffers work.
var Hotpath = &Analyzer{
	Name: "acphotpath",
	Doc: "flag allocation-causing constructs in //acp:hotpath functions " +
		"(waive a finding with //acp:alloc-ok <why>)",
	Run: runHotpath,
}

const allocWaiver = "alloc-ok"

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasAnnotation(fd, "hotpath") {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
	return nil
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.FuncLit:
			checkClosureCapture(pass, fd, n)
			return false // the closure body runs under its own budget
		case *ast.UnaryExpr:
			checkCompositeAddr(pass, n)
		case *ast.BinaryExpr:
			checkStringConcat(pass, n)
		case *ast.AssignStmt:
			checkHotAssign(pass, fd, n)
		case *ast.ReturnStmt:
			checkHotReturn(pass, fd, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// fmt.* always allocates: variadic interface boxing at minimum.
	if fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func); ok &&
		fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if !pass.waived(call.Pos(), allocWaiver) {
			pass.Reportf(call.Pos(),
				"fmt.%s allocates (interface boxing and formatting buffers) on the hot path (//acp:alloc-ok <why> to waive)",
				fn.Name())
		}
		return
	}

	// new(T) allocates.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				if !pass.waived(call.Pos(), allocWaiver) {
					pass.Reportf(call.Pos(), "new(...) allocates on the hot path (//acp:alloc-ok <why> to waive)")
				}
			case "append":
				checkHotAppend(pass, fd, call)
			}
			return
		}
	}

	// Conversions to interface types box their operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0])
		}
		return
	}

	// Ordinary calls: arguments implicitly converted to interface
	// parameters box their values.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) {
			checkBoxing(pass, pt, arg)
		}
	}
}

// checkBoxing reports when storing arg into an interface-typed slot
// heap-allocates: any value wider than a pointer word (strings, slices,
// structs, large ints/floats) must be boxed. Pointer-shaped values
// (pointers, maps, chans, funcs, unsafe.Pointer) and nil do not allocate.
func checkBoxing(pass *Pass, target types.Type, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	if pass.waived(arg.Pos(), allocWaiver) {
		return
	}
	pass.Reportf(arg.Pos(),
		"value of type %s boxed into %s allocates on the hot path (//acp:alloc-ok <why> to waive)",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
		types.TypeString(target, types.RelativeTo(pass.Pkg)))
}

// checkClosureCapture flags func literals that capture function-local
// variables: the captured variables (and usually the closure itself)
// escape to the heap. Closures over package-level state compile to a
// static closure and are fine.
func checkClosureCapture(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared in the enclosing function but outside
		// the literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = id
		}
		return true
	})
	if captured == nil {
		return
	}
	if pass.waived(lit.Pos(), allocWaiver) {
		return
	}
	pass.Reportf(lit.Pos(),
		"closure captures %s; captured locals escape to the heap on the hot path (//acp:alloc-ok <why> to waive)",
		captured.Name)
}

func checkCompositeAddr(pass *Pass, ue *ast.UnaryExpr) {
	// token.AND of a composite literal: &T{...} heap-allocates when it
	// escapes; on a hot path that is the way to bet.
	if ue.Op.String() != "&" {
		return
	}
	if _, ok := ast.Unparen(ue.X).(*ast.CompositeLit); !ok {
		return
	}
	if pass.waived(ue.Pos(), allocWaiver) {
		return
	}
	pass.Reportf(ue.Pos(), "&composite literal allocates on the hot path (//acp:alloc-ok <why> to waive)")
}

func checkStringConcat(pass *Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Type == nil {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time
	}
	if pass.waived(be.Pos(), allocWaiver) {
		return
	}
	pass.Reportf(be.Pos(), "string concatenation allocates on the hot path (//acp:alloc-ok <why> to waive)")
}

// checkHotAppend allows appends only to scratch-derived destinations:
// a field chain (sc.arena, sc.preds[i]), a parameter-rooted slice, or a
// local whose declaration derives from one of those. A local declared
// with make/literal/var grows a fresh backing array per call.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dest := ast.Unparen(call.Args[0])
	if scratchDerived(pass, fd, dest, 0) {
		return
	}
	if pass.waived(call.Pos(), allocWaiver) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to non-scratch destination %s may grow a fresh backing array per call on the hot path (//acp:alloc-ok <why> to waive)",
		types.ExprString(dest))
}

// scratchDerived reports whether e is rooted in persistent storage: a
// selector (struct field), an index into one, a function parameter or
// receiver, or a local variable whose initialiser is itself
// scratch-derived (children := sc.children[depth][:0]).
func scratchDerived(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int) bool {
	if depth > 10 {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return scratchDerived(pass, fd, x.X, depth+1)
	case *ast.SliceExpr:
		return scratchDerived(pass, fd, x.X, depth+1)
	case *ast.StarExpr:
		return scratchDerived(pass, fd, x.X, depth+1)
	case *ast.CallExpr:
		// append(sc.sel[:0], ...) pipes the scratch through.
		if isBuiltinAppend(pass, x) && len(x.Args) > 0 {
			return scratchDerived(pass, fd, x.Args[0], depth+1)
		}
		return false
	case *ast.Ident:
		v, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
		if !ok {
			return false
		}
		if isParamOrRecv(pass, fd, v) {
			return true
		}
		if init := localInitExpr(pass, fd, v); init != nil {
			return scratchDerived(pass, fd, init, depth+1)
		}
		return false
	}
	return false
}

func isParamOrRecv(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pass.TypesInfo.ObjectOf(name) == v {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params) || check(fd.Type.Results)
}

// localInitExpr finds the expression a local variable derives from: its
// first binding whose right-hand side does not mention the variable
// itself. Self-extending rebinds (out = append(out, v)) preserve the
// original derivation — out := sc.selected[:0] stays scratch no matter
// how many times it is re-appended.
func localInitExpr(pass *Pass, fd *ast.FuncDecl, v *types.Var) ast.Expr {
	var init ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if init != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.ObjectOf(id) == v && !mentionsObj(pass, as.Rhs[i], v) {
				init = as.Rhs[i]
			}
		}
		return true
	})
	return init
}

func checkHotAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	// Implicit boxing through assignment to an interface-typed LHS.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		checkBoxing(pass, lt, as.Rhs[i])
	}
}

func checkHotReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fd.Type.Results
	if results == nil {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // naked return or multi-value forwarding
	}
	for i, r := range ret.Results {
		if resultTypes[i] != nil && types.IsInterface(resultTypes[i]) {
			checkBoxing(pass, resultTypes[i], r)
		}
	}
}
