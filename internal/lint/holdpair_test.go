package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHoldPair(t *testing.T) {
	linttest.Run(t, "testdata/src/holdpair", lint.HoldPair)
}
