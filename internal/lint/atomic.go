package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomic enforces access consistency on atomically-updated memory: a
// struct field or package-level variable that is ever passed to a
// sync/atomic function must never be read or written plainly. Mixed
// access is a data race even when it "only" reads — the race detector
// flags it, and on 32-bit targets a torn 64-bit read is silently wrong.
// The analyzer also computes 32-bit (GOARCH=386) struct layouts and
// reports 64-bit atomic fields that land on a non-8-byte-aligned
// offset, which panics at runtime on 32-bit platforms (the classic
// "first word of the struct" rule).
//
// Sanctioned accesses: arguments of sync/atomic calls, taking the
// address of the location (it feeds an atomic call elsewhere), and any
// access rooted at a non-pointer local — a value copy (snapshot
// structs, value-receiver methods on a Counters copy) is private by
// construction. Typed atomics (atomic.Int64 and friends) are always
// fine: the type system already forbids plain access and the compiler
// aligns them. Test files are skipped; races there are the race
// detector's job. Waive with //acp:atomic-ok <why>.
var Atomic = &Analyzer{
	Name: "acpatomic",
	Doc: "forbid plain reads/writes of fields accessed via sync/atomic and check " +
		"64-bit atomic fields for 32-bit struct alignment (waive with //acp:atomic-ok <why>)",
	Run: runAtomic,
}

const atomicWaiver = "atomic-ok"

type atomicClassKind int

const (
	atomicDirect atomicClassKind = iota // the location itself: &x.f, &pkgVar
	atomicElem                          // an element of a slice/array field: &x.f[i]
)

type atomicClass struct {
	kind atomicClassKind
	name string
}

type atomicChecker struct {
	pass    *Pass
	classes map[types.Object]atomicClass
	// sanctioned spans: the location argument of each sync/atomic call.
	spans map[*ast.File][]posSpan
}

type posSpan struct {
	from, to token.Pos
}

func runAtomic(pass *Pass) error {
	ac := &atomicChecker{
		pass:    pass,
		classes: map[types.Object]atomicClass{},
		spans:   map[*ast.File][]posSpan{},
	}
	for _, file := range pass.Files {
		if atomicSkipFile(pass, file) {
			continue
		}
		ac.collect(file)
	}
	if len(ac.classes) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if atomicSkipFile(pass, file) {
			continue
		}
		ac.checkFile(file)
	}
	ac.checkAlignment()
	return nil
}

func atomicSkipFile(pass *Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

// collect registers the atomic classes and sanctioned spans of one file.
func (ac *atomicChecker) collect(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSyncAtomicCall(ac.pass.TypesInfo, call) || len(call.Args) == 0 {
			return true
		}
		loc := ast.Unparen(call.Args[0])
		ac.spans[file] = append(ac.spans[file], posSpan{from: loc.Pos(), to: loc.End()})
		addr, ok := loc.(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		target := ast.Unparen(addr.X)
		kind := atomicDirect
		if idx, ok := target.(*ast.IndexExpr); ok {
			kind = atomicElem
			target = ast.Unparen(idx.X)
		}
		obj, name := atomicTargetClass(ac.pass, target)
		if obj == nil {
			return true
		}
		if kind == atomicElem {
			name += "[i]"
		}
		if _, ok := ac.classes[obj]; !ok {
			ac.classes[obj] = atomicClass{kind: kind, name: name}
		}
		return true
	})
}

// atomicTargetClass resolves the location under & to a trackable class:
// a struct field or a package-level variable. Function-local atomics
// (a local counter joined before the final read) are not tracked — the
// join makes the plain read safe, and the race detector owns the rest.
func atomicTargetClass(pass *Pass, target ast.Expr) (types.Object, string) {
	switch t := target.(type) {
	case *ast.SelectorExpr:
		v, ok := pass.TypesInfo.Uses[t.Sel].(*types.Var)
		if !ok {
			return nil, ""
		}
		_, name := syncRecvClass(pass, t)
		if name == "" {
			name = v.Name()
		}
		return v, name
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[t].(*types.Var)
		if !ok || v.IsField() {
			return nil, ""
		}
		if v.Parent() != pass.Pkg.Scope() {
			return nil, "" // local: a join protects the final plain read
		}
		return v, v.Name()
	}
	return nil, ""
}

// isSyncAtomicCall matches package-level sync/atomic functions
// (AddInt64, LoadUint32, CompareAndSwapInt64, ...). Typed-atomic
// methods are deliberately not matched: their fields cannot be accessed
// plainly in the first place.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

func (ac *atomicChecker) checkFile(file *ast.File) {
	writes := map[ast.Node]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking the address feeds an atomic call (directly or via
				// a helper); the call sites are checked, not the aliasing.
				return false
			}
		case *ast.SelectorExpr:
			ac.checkAccess(file, n, n.Sel.Pos(), atomicDirect, writes[n])
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				ac.checkAccess(file, sel, n.Pos(), atomicElem, writes[n])
			} else if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				ac.checkIdentAccess(file, id, n.Pos(), atomicElem, writes[n])
			}
		case *ast.Ident:
			ac.checkIdentAccess(file, n, n.Pos(), atomicDirect, writes[n])
		}
		return true
	})
}

func (ac *atomicChecker) checkAccess(file *ast.File, sel *ast.SelectorExpr, pos token.Pos, as atomicClassKind, isWrite bool) {
	obj, ok := ac.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	ac.checkObj(file, sel, obj, pos, as, isWrite)
}

func (ac *atomicChecker) checkIdentAccess(file *ast.File, id *ast.Ident, pos token.Pos, as atomicClassKind, isWrite bool) {
	obj, ok := ac.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	ac.checkObj(file, id, obj, pos, as, isWrite)
}

func (ac *atomicChecker) checkObj(file *ast.File, e ast.Expr, obj *types.Var, pos token.Pos, as atomicClassKind, isWrite bool) {
	cls, ok := ac.classes[obj]
	if !ok || cls.kind != as {
		return
	}
	for _, sp := range ac.spans[file] {
		if sp.from <= pos && pos < sp.to {
			return
		}
	}
	if valueCopyRooted(ac.pass, e) {
		return
	}
	if ac.pass.waived(pos, atomicWaiver) {
		return
	}
	access, fix := "read plainly", "atomic.Load"
	if isWrite {
		access, fix = "written plainly", "atomic.Store/Add"
	}
	ac.pass.Reportf(pos,
		"%s is accessed with sync/atomic elsewhere but %s here; use %s or a typed atomic — mixed access is a data race (//acp:atomic-ok <why> to waive)",
		cls.name, access, fix)
}

// valueCopyRooted reports whether the access chain is rooted at a
// non-pointer function-local variable: a private value copy, not the
// shared instance.
func valueCopyRooted(pass *Pass, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	v, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == pass.Pkg.Scope() {
		return false // package-level: shared
	}
	if _, ok := v.Type().Underlying().(*types.Pointer); ok {
		return false
	}
	return true
}

// checkAlignment computes GOARCH=386 struct layouts and flags 64-bit
// atomic fields at non-8-byte offsets: sync/atomic on int64/uint64
// panics on 32-bit platforms unless the value is 8-byte aligned.
func (ac *atomicChecker) checkAlignment() {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	scope := ac.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		if len(fields) == 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		for i, f := range fields {
			cls, ok := ac.classes[f]
			if !ok || cls.kind != atomicDirect || !is64BitBasic(f.Type()) {
				continue
			}
			if offsets[i]%8 == 0 {
				continue
			}
			if ac.pass.waived(f.Pos(), atomicWaiver) {
				continue
			}
			ac.pass.Reportf(f.Pos(),
				"64-bit atomic field %s sits at offset %d of %s on 32-bit targets; sync/atomic requires 8-byte alignment — move it to the front or use atomic.Int64 (//acp:atomic-ok <why> to waive)",
				cls.name, offsets[i], tn.Name())
		}
	}
}

func is64BitBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}
