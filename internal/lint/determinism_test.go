package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	saved := lint.DeterminismScope
	lint.DeterminismScope = append([]string{"testdata/src/determinism"}, saved...)
	defer func() { lint.DeterminismScope = saved }()
	linttest.Run(t, "testdata/src/determinism", lint.Determinism)
}

// TestDeterminismScope checks the fixture is ignored when its path is
// not in scope: the analyzer must not fire outside the deterministic
// packages.
func TestDeterminismScope(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/determinism", ".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside its scope: %v", diags)
	}
}
