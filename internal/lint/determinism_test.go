package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	saved := lint.DeterminismScope
	lint.DeterminismScope = append([]string{"testdata/src/determinism"}, saved...)
	defer func() { lint.DeterminismScope = saved }()
	linttest.Run(t, "testdata/src/determinism", lint.Determinism)
}

// TestDeterminismScopeCoversReplayedPackages pins the packages the
// harness oracles replay bit-identically into the analyzer's scope.
// runtime (quota admission + adaptation), workload (scenario-family
// plans), and metrics (Jain aggregation) joined core/dist/harness/faults
// when the multi-app suite started shadowing them; dropping one from
// scope would let wall-clock or map-order leaks back into replayed code.
// server (lease reaper) and obs (DriftMonitor) joined when they adopted
// the injected harness clock: both promise virtual-clock determinism.
func TestDeterminismScopeCoversReplayedPackages(t *testing.T) {
	want := []string{
		"internal/core",
		"internal/dist",
		"internal/harness",
		"internal/faults",
		"internal/runtime",
		"internal/workload",
		"internal/metrics",
		"internal/server",
		"internal/obs",
	}
	in := make(map[string]bool, len(lint.DeterminismScope))
	for _, p := range lint.DeterminismScope {
		in[p] = true
	}
	for _, p := range want {
		if !in[p] {
			t.Errorf("DeterminismScope is missing %q", p)
		}
	}
}

// TestDeterminismScope checks the fixture is ignored when its path is
// not in scope: the analyzer must not fire outside the deterministic
// packages.
func TestDeterminismScope(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/determinism", ".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside its scope: %v", diags)
	}
}
