package lint

// summary.go computes per-function call summaries: facts a function
// establishes directly, unioned with the facts of every same-package
// function it (transitively) calls. The concurrency analyzers use it to
// see through one level of structure — a goroutine body that calls
// s.handleConn still counts handleConn's wg.Done, and a method that
// takes c.mu charges that acquisition to every caller holding another
// lock.

import (
	"go/ast"
	"go/types"
)

// declaredFuncs indexes every function and method declared in the
// package by its types object.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// staticCallee resolves a call to a function declared in this package,
// or nil (builtin, other package, interface method, function value).
func staticCallee(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *types.Func {
	fn, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return nil
	}
	if _, ok := decls[fn]; !ok {
		return nil
	}
	return fn
}

// callSummaries returns a memoized lookup from a declared function to
// the set of facts it establishes: direct(fd) plus the facts of every
// same-package function its body calls, transitively. Calls made inside
// function literals or `go` statements are excluded — a closure runs at
// an unknown later time (a goroutine, a timer callback) and a spawned
// goroutine runs concurrently, so neither is part of the call itself.
// Recursive cycles are cut by returning the in-progress partial summary,
// which under-approximates mutual recursion; every client treats a
// missing fact conservatively.
func callSummaries[F comparable](pass *Pass, decls map[*types.Func]*ast.FuncDecl, direct func(fd *ast.FuncDecl) []F) func(*types.Func) map[F]bool {
	memo := make(map[*types.Func]map[F]bool)
	visiting := make(map[*types.Func]bool)
	var visit func(fn *types.Func) map[F]bool
	visit = func(fn *types.Func) map[F]bool {
		if m, ok := memo[fn]; ok {
			return m
		}
		if visiting[fn] {
			return nil
		}
		fd := decls[fn]
		if fd == nil {
			return nil
		}
		visiting[fn] = true
		facts := make(map[F]bool)
		for _, f := range direct(fd) {
			facts[f] = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(pass, decls, call); callee != nil && callee != fn {
				for f := range visit(callee) {
					facts[f] = true
				}
			}
			return true
		})
		delete(visiting, fn)
		memo[fn] = facts
		return facts
	}
	return visit
}
