package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutine requires every `go` statement in non-test code to be tied
// to a shutdown path. A goroutine nobody can join or stop outlives its
// owner: it races teardown for shared state (the exact shape of the
// PR 9 /trace unsubscribe leak), keeps connections and file
// descriptors pinned, and makes "the server exited cleanly" untestable.
//
// A spawn is accepted when the goroutine's work — its literal body, or
// the transitive call summary (summary.go) of the named function it
// runs — is bounded by any of:
//
//  1. a WaitGroup: the body (or a callee) calls Done on a WaitGroup
//     that the spawning function Adds to before the `go` statement;
//  2. a channel: the body receives (<-ch, select with a receive, or
//     range over a channel), so closing the channel or a send releases
//     it;
//  3. a join: the body calls WaitGroup.Wait, i.e. it is itself a
//     closer/drainer that exits when the tracked workers do;
//  4. an owned server loop: the body is a single call on a value whose
//     type has a Close/Stop/Shutdown method (http.Server.Serve,
//     net.Listener accept loops) — stopping the owner unblocks it.
//
// Everything else is flagged at the `go` statement. Waive deliberate
// fire-and-forget with //acp:goroutine-ok <why>.
var Goroutine = &Analyzer{
	Name: "acpgoroutine",
	Doc: "require every goroutine to be joinable or stoppable: WaitGroup add/done, " +
		"done-channel receive, or a Close/Stop-bounded call (waive with //acp:goroutine-ok <why>)",
	Run: runGoroutine,
}

const goroutineWaiver = "goroutine-ok"

type goFactKind int

const (
	factChanBlock goFactKind = iota // receives from a channel (select/range included)
	factWgDone                      // calls Done on the WaitGroup class in obj
	factWgWait                      // calls Wait on a WaitGroup
)

type goFact struct {
	kind goFactKind
	obj  types.Object
}

type goroutineChecker struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	summary func(*types.Func) map[goFact]bool
}

func runGoroutine(pass *Pass) error {
	decls := declaredFuncs(pass)
	gc := &goroutineChecker{pass: pass, decls: decls}
	gc.summary = callSummaries(pass, decls, func(fd *ast.FuncDecl) []goFact {
		return directGoFacts(pass, fd.Body)
	})
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				gc.checkSpawn(file, g)
			}
			return true
		})
	}
	return nil
}

func (gc *goroutineChecker) checkSpawn(file *ast.File, g *ast.GoStmt) {
	facts := gc.spawnFacts(g)
	var dones []types.Object
	for f := range facts {
		switch f.kind {
		case factChanBlock, factWgWait:
			return // bounded by a channel or by joining tracked workers
		case factWgDone:
			dones = append(dones, f.obj)
		}
	}
	fd := enclosingFuncDecl(file, g.Pos())
	for _, w := range dones {
		if fd != nil && addsBefore(gc.pass, fd, w, g.Pos()) {
			return
		}
	}
	if closeBoundedCall(gc.pass, g) {
		return
	}
	if gc.pass.waived(g.Pos(), goroutineWaiver) {
		return
	}
	gc.pass.Reportf(g.Pos(),
		"goroutine is not tied to a shutdown path: track it with a WaitGroup (Add before the spawn, Done inside), "+
			"block it on a channel receive, or bound it by a Close/Stop-able owner (//acp:goroutine-ok <why> to waive)")
}

// spawnFacts collects what the spawned work does: the literal body's
// direct facts plus summaries of same-package functions it calls, or
// the summary of the named function being spawned.
func (gc *goroutineChecker) spawnFacts(g *ast.GoStmt) map[goFact]bool {
	facts := map[goFact]bool{}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, f := range directGoFacts(gc.pass, lit.Body) {
			facts[f] = true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if fn := staticCallee(gc.pass, gc.decls, n); fn != nil {
					for f := range gc.summary(fn) {
						facts[f] = true
					}
				}
			}
			return true
		})
		return facts
	}
	if fn := staticCallee(gc.pass, gc.decls, g.Call); fn != nil {
		for f := range gc.summary(fn) {
			facts[f] = true
		}
	}
	return facts
}

// directGoFacts scans one function body for lifecycle facts, excluding
// nested literals and nested spawns (those run on yet another
// goroutine).
func directGoFacts(pass *Pass, body *ast.BlockStmt) []goFact {
	var out []goFact
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, goFact{kind: factChanBlock})
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					out = append(out, goFact{kind: factChanBlock})
				}
			}
		case *ast.CallExpr:
			recv, name, ok := waitGroupMethod(pass.TypesInfo, n)
			if !ok {
				return true
			}
			obj, _ := syncRecvClass(pass, recv)
			if obj == nil {
				return true
			}
			switch name {
			case "Done":
				out = append(out, goFact{kind: factWgDone, obj: obj})
			case "Wait":
				out = append(out, goFact{kind: factWgWait, obj: obj})
			}
		}
		return true
	})
	return out
}

// waitGroupMethod matches sync.WaitGroup Add/Done/Wait calls and
// returns the receiver expression and method name.
func waitGroupMethod(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
	default:
		return nil, "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, "", false
	}
	if named, ok := derefType(recv.Type()).(*types.Named); !ok || named.Obj().Name() != "WaitGroup" {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// addsBefore reports whether fd calls Add on the WaitGroup class w
// lexically before pos — the spawner must reserve the worker before it
// starts, or Wait can pass before the goroutine registers itself.
func addsBefore(pass *Pass, fd *ast.FuncDecl, w types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		recv, name, ok := waitGroupMethod(pass.TypesInfo, call)
		if !ok || name != "Add" {
			return true
		}
		if obj, _ := syncRecvClass(pass, recv); obj == w {
			found = true
		}
		return true
	})
	return found
}

// closeBoundedCall reports whether the spawn is a single method call on
// a value whose type has a Close/Stop/Shutdown method: `go srv.Serve(l)`
// or `go func() { _ = srv.Serve(l) }()` is released by closing srv.
func closeBoundedCall(pass *Pass, g *ast.GoStmt) bool {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if len(lit.Body.List) != 1 {
			return false
		}
		switch st := lit.Body.List[0].(type) {
		case *ast.ExprStmt:
			c, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return false
			}
			call = c
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return false
			}
			c, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return false
			}
			call = c
		default:
			return false
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	for _, name := range []string{"Close", "Stop", "Shutdown"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, name); obj != nil {
			return true
		}
	}
	return false
}
