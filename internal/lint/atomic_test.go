package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestAtomic(t *testing.T) {
	linttest.Run(t, "testdata/src/atomic", lint.Atomic)
}
