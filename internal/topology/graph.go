// Package topology generates and routes over the IP-layer network
// underlying the stream processing overlay.
//
// The paper's simulator uses the degree-based Internet topology generator
// Inet-3.0 to create a 3200-node power-law graph (§4.1). Inet itself is a
// closed C artefact, so this package substitutes a degree-based
// preferential-attachment generator that reproduces the property the
// experiments rely on: a heavy-tailed (power-law) degree distribution with
// heterogeneous path delays and bandwidths. Routing, as in the paper, is
// delay-based shortest path.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Edge is a directed view of an undirected IP link.
type Edge struct {
	// To is the neighbouring node.
	To int
	// Delay is the link's propagation delay in milliseconds.
	Delay float64
	// Bandwidth is the link capacity in kbps.
	Bandwidth float64
}

// Graph is an undirected IP-layer network. Nodes are dense integers
// [0, N). The adjacency representation stores each undirected link as two
// mirrored directed edges with identical delay and bandwidth.
type Graph struct {
	adj [][]Edge
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int {
	total := 0
	for _, edges := range g.adj {
		total += len(edges)
	}
	return total / 2
}

// Neighbors returns the edges leaving node v. The returned slice is the
// graph's internal storage; callers must not modify it.
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// addLink inserts an undirected link between a and b.
func (g *Graph) addLink(a, b int, delay, bandwidth float64) {
	g.adj[a] = append(g.adj[a], Edge{To: b, Delay: delay, Bandwidth: bandwidth})
	g.adj[b] = append(g.adj[b], Edge{To: a, Delay: delay, Bandwidth: bandwidth})
}

// hasLink reports whether a and b are directly connected.
func (g *Graph) hasLink(a, b int) bool {
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// Config controls power-law graph generation.
type Config struct {
	// Nodes is the total node count. The paper uses 3200.
	Nodes int
	// EdgesPerNode is the number of links each arriving node creates
	// toward existing nodes (preferential attachment parameter m).
	EdgesPerNode int
	// MinDelay and MaxDelay bound the per-link propagation delay (ms).
	MinDelay, MaxDelay float64
	// MinBandwidth and MaxBandwidth bound per-link capacity (kbps).
	MinBandwidth, MaxBandwidth float64
}

// DefaultConfig mirrors the paper's simulation setup: a 3200-node
// power-law graph with millisecond-scale link delays and access-network
// scale bandwidths.
func DefaultConfig() Config {
	return Config{
		Nodes:        3200,
		EdgesPerNode: 2,
		MinDelay:     1,
		MaxDelay:     10,
		MinBandwidth: 10_000,  // 10 Mbps
		MaxBandwidth: 100_000, // 100 Mbps
	}
}

// Generate builds a connected power-law graph by degree-based preferential
// attachment: each new node links to EdgesPerNode distinct existing nodes
// chosen with probability proportional to their current degree. All
// randomness is drawn from rng, so generation is deterministic per seed.
func Generate(cfg Config, rng *rand.Rand) (*Graph, error) {
	m := cfg.EdgesPerNode
	if m < 1 {
		return nil, fmt.Errorf("topology: EdgesPerNode %d < 1", m)
	}
	if cfg.Nodes < m+1 {
		return nil, fmt.Errorf("topology: Nodes %d must exceed EdgesPerNode %d", cfg.Nodes, m)
	}
	if cfg.MinDelay <= 0 || cfg.MaxDelay < cfg.MinDelay {
		return nil, fmt.Errorf("topology: invalid delay range [%v, %v]", cfg.MinDelay, cfg.MaxDelay)
	}
	if cfg.MinBandwidth <= 0 || cfg.MaxBandwidth < cfg.MinBandwidth {
		return nil, fmt.Errorf("topology: invalid bandwidth range [%v, %v]", cfg.MinBandwidth, cfg.MaxBandwidth)
	}

	g := &Graph{adj: make([][]Edge, cfg.Nodes)}
	link := func(a, b int) {
		delay := cfg.MinDelay + rng.Float64()*(cfg.MaxDelay-cfg.MinDelay)
		bw := cfg.MinBandwidth + rng.Float64()*(cfg.MaxBandwidth-cfg.MinBandwidth)
		g.addLink(a, b, delay, bw)
	}

	// Seed clique of m+1 nodes so every attachment target has degree >= m.
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			link(a, b)
		}
	}

	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is degree-proportional sampling.
	targets := make([]int, 0, 2*m*cfg.Nodes)
	for v := 0; v <= m; v++ {
		for range g.adj[v] {
			targets = append(targets, v)
		}
	}

	for v := m + 1; v < cfg.Nodes; v++ {
		chosen := make([]int, 0, m)
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if t != v && !contains(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		// Keep the order rng produced them in so generation stays
		// deterministic per seed.
		for _, t := range chosen {
			link(v, t)
			targets = append(targets, v, t)
		}
	}
	return g, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// pathItem is a Dijkstra priority-queue entry.
type pathItem struct {
	node int
	dist float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// PathTree is the result of a single-source shortest-path computation.
type PathTree struct {
	src    int
	dist   []float64
	parent []int
}

// ShortestPaths runs Dijkstra from src using link delay as the metric,
// matching the paper's "delay-based shortest path routing algorithm".
func (g *Graph) ShortestPaths(src int) *PathTree {
	n := g.NumNodes()
	t := &PathTree{
		src:    src,
		dist:   make([]float64, n),
		parent: make([]int, n),
	}
	for i := range t.dist {
		t.dist[i] = math.Inf(1)
		t.parent[i] = -1
	}
	t.dist[src] = 0

	h := &pathHeap{{node: src}}
	for h.Len() > 0 {
		item := heap.Pop(h).(pathItem)
		if item.dist > t.dist[item.node] {
			continue // stale entry
		}
		for _, e := range g.adj[item.node] {
			if d := item.dist + e.Delay; d < t.dist[e.To] {
				t.dist[e.To] = d
				t.parent[e.To] = item.node
				heap.Push(h, pathItem{node: e.To, dist: d})
			}
		}
	}
	return t
}

// Distance returns the shortest-path delay from the tree's source to dst,
// or +Inf if dst is unreachable.
func (t *PathTree) Distance(dst int) float64 { return t.dist[dst] }

// PathTo returns the node sequence from the source to dst inclusive, or
// nil if dst is unreachable.
func (t *PathTree) PathTo(dst int) []int {
	if math.IsInf(t.dist[dst], 1) {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = t.parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathMetrics walks the IP path from the tree's source to dst and returns
// its total delay and bottleneck bandwidth. A zero-length path (src==dst)
// has zero delay and infinite bandwidth. Unreachable destinations return
// (+Inf, 0).
func (g *Graph) PathMetrics(t *PathTree, dst int) (delay, bottleneck float64) {
	path := t.PathTo(dst)
	if path == nil {
		return math.Inf(1), 0
	}
	bottleneck = math.Inf(1)
	for i := 1; i < len(path); i++ {
		e, ok := g.edgeBetween(path[i-1], path[i])
		if !ok {
			return math.Inf(1), 0
		}
		delay += e.Delay
		bottleneck = math.Min(bottleneck, e.Bandwidth)
	}
	return delay, bottleneck
}

func (g *Graph) edgeBetween(a, b int) (Edge, bool) {
	for _, e := range g.adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.NumNodes()
}

// DegreeStats summarises the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// PowerLawSlope is the least-squares slope of log(count) over
	// log(degree) for the complementary degree histogram; heavy-tailed
	// graphs produce a clearly negative slope.
	PowerLawSlope float64
}

// Stats computes degree-distribution statistics, used by tests and the
// acptopo inspection tool to confirm the generator produces a power law.
func (g *Graph) Stats() DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: math.MaxInt}
	hist := make(map[int]int)
	sum := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		hist[d]++
	}
	st.Mean = float64(sum) / float64(n)
	st.PowerLawSlope = logLogSlope(hist)
	return st
}

func logLogSlope(hist map[int]int) float64 {
	type pt struct{ x, y float64 }
	var pts []pt
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		if d > 0 {
			degrees = append(degrees, d)
		}
	}
	sort.Ints(degrees)
	for _, d := range degrees {
		pts = append(pts, pt{x: math.Log(float64(d)), y: math.Log(float64(hist[d]))})
	}
	if len(pts) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.x
		sy += p.y
		sxx += p.x * p.x
		sxy += p.x * p.y
	}
	n := float64(len(pts))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
