package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGraph(t *testing.T, nodes int, seed int64) *Graph {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	g, err := Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero edges per node", mutate: func(c *Config) { c.EdgesPerNode = 0 }},
		{name: "too few nodes", mutate: func(c *Config) { c.Nodes = 2; c.EdgesPerNode = 2 }},
		{name: "bad delay range", mutate: func(c *Config) { c.MinDelay = 5; c.MaxDelay = 1 }},
		{name: "zero min delay", mutate: func(c *Config) { c.MinDelay = 0 }},
		{name: "bad bandwidth range", mutate: func(c *Config) { c.MinBandwidth = 100; c.MaxBandwidth = 10 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
				t.Error("Generate accepted invalid config")
			}
		})
	}
}

func TestGenerateConnected(t *testing.T) {
	g := testGraph(t, 500, 1)
	if !g.Connected() {
		t.Error("generated graph is not connected")
	}
}

func TestGenerateNodeAndLinkCounts(t *testing.T) {
	const n = 400
	g := testGraph(t, n, 2)
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	// m=2: seed triangle (3 links) + 2 links per remaining node.
	wantLinks := 3 + 2*(n-3)
	if g.NumLinks() != wantLinks {
		t.Errorf("NumLinks = %d, want %d", g.NumLinks(), wantLinks)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := testGraph(t, 200, 7)
	g2 := testGraph(t, 200, 7)
	for v := 0; v < g1.NumNodes(); v++ {
		e1, e2 := g1.Neighbors(v), g2.Neighbors(v)
		if len(e1) != len(e2) {
			t.Fatalf("node %d degree differs: %d vs %d", v, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", v, i, e1[i], e2[i])
			}
		}
	}
}

func TestGeneratePowerLawTail(t *testing.T) {
	g := testGraph(t, 3200, 3)
	st := g.Stats()
	if st.Min < 2 {
		t.Errorf("min degree = %d, want >= 2", st.Min)
	}
	// Preferential attachment concentrates degree: the hubs should be an
	// order of magnitude above the mean.
	if float64(st.Max) < 8*st.Mean {
		t.Errorf("max degree %d not heavy-tailed relative to mean %.1f", st.Max, st.Mean)
	}
	if st.PowerLawSlope > -1 {
		t.Errorf("log-log degree slope = %.2f, want clearly negative (power law)", st.PowerLawSlope)
	}
}

func TestGenerateEdgeAttributesInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 300
	g, err := Generate(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Neighbors(v) {
			if e.Delay < cfg.MinDelay || e.Delay > cfg.MaxDelay {
				t.Fatalf("edge delay %v out of range", e.Delay)
			}
			if e.Bandwidth < cfg.MinBandwidth || e.Bandwidth > cfg.MaxBandwidth {
				t.Fatalf("edge bandwidth %v out of range", e.Bandwidth)
			}
		}
	}
}

func TestGenerateSymmetricLinks(t *testing.T) {
	g := testGraph(t, 300, 5)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Neighbors(v) {
			back, ok := g.edgeBetween(e.To, v)
			if !ok {
				t.Fatalf("link %d->%d has no mirror", v, e.To)
			}
			if back.Delay != e.Delay || back.Bandwidth != e.Bandwidth {
				t.Fatalf("asymmetric attributes on link %d-%d", v, e.To)
			}
		}
	}
}

func TestShortestPathsSmallWorked(t *testing.T) {
	// Hand-built diamond: 0-1 (delay 1), 0-2 (delay 4), 1-2 (delay 1),
	// 2-3 (delay 1), 1-3 (delay 5).
	g := &Graph{adj: make([][]Edge, 4)}
	g.addLink(0, 1, 1, 100)
	g.addLink(0, 2, 4, 100)
	g.addLink(1, 2, 1, 50)
	g.addLink(2, 3, 1, 200)
	g.addLink(1, 3, 5, 100)

	tree := g.ShortestPaths(0)
	tests := []struct {
		dst      int
		wantDist float64
		wantPath []int
	}{
		{dst: 0, wantDist: 0, wantPath: []int{0}},
		{dst: 1, wantDist: 1, wantPath: []int{0, 1}},
		{dst: 2, wantDist: 2, wantPath: []int{0, 1, 2}},
		{dst: 3, wantDist: 3, wantPath: []int{0, 1, 2, 3}},
	}
	for _, tt := range tests {
		if got := tree.Distance(tt.dst); got != tt.wantDist {
			t.Errorf("Distance(%d) = %v, want %v", tt.dst, got, tt.wantDist)
		}
		path := tree.PathTo(tt.dst)
		if len(path) != len(tt.wantPath) {
			t.Fatalf("PathTo(%d) = %v, want %v", tt.dst, path, tt.wantPath)
		}
		for i := range path {
			if path[i] != tt.wantPath[i] {
				t.Fatalf("PathTo(%d) = %v, want %v", tt.dst, path, tt.wantPath)
			}
		}
	}
}

func TestPathMetrics(t *testing.T) {
	g := &Graph{adj: make([][]Edge, 4)}
	g.addLink(0, 1, 1, 100)
	g.addLink(1, 2, 2, 50)
	g.addLink(2, 3, 3, 200)

	tree := g.ShortestPaths(0)
	delay, bw := g.PathMetrics(tree, 3)
	if delay != 6 {
		t.Errorf("delay = %v, want 6", delay)
	}
	if bw != 50 {
		t.Errorf("bottleneck = %v, want 50", bw)
	}

	// Zero-length path: same node.
	delay, bw = g.PathMetrics(tree, 0)
	if delay != 0 || !math.IsInf(bw, 1) {
		t.Errorf("self path = (%v, %v), want (0, +Inf)", delay, bw)
	}
}

func TestPathMetricsUnreachable(t *testing.T) {
	g := &Graph{adj: make([][]Edge, 3)}
	g.addLink(0, 1, 1, 100)
	// Node 2 is isolated.
	tree := g.ShortestPaths(0)
	if d := tree.Distance(2); !math.IsInf(d, 1) {
		t.Errorf("Distance to isolated node = %v, want +Inf", d)
	}
	if p := tree.PathTo(2); p != nil {
		t.Errorf("PathTo isolated node = %v, want nil", p)
	}
	delay, bw := g.PathMetrics(tree, 2)
	if !math.IsInf(delay, 1) || bw != 0 {
		t.Errorf("PathMetrics to isolated node = (%v, %v)", delay, bw)
	}
}

// TestShortestPathsOptimality cross-checks Dijkstra against Bellman-Ford
// relaxation on random small graphs.
func TestShortestPathsOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Nodes: 30, EdgesPerNode: 2,
			MinDelay: 1, MaxDelay: 20,
			MinBandwidth: 1, MaxBandwidth: 10,
		}
		g, err := Generate(cfg, rng)
		if err != nil {
			return false
		}
		src := rng.Intn(cfg.Nodes)
		tree := g.ShortestPaths(src)

		// Bellman-Ford reference.
		dist := make([]float64, cfg.Nodes)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		for iter := 0; iter < cfg.Nodes; iter++ {
			for v := 0; v < cfg.Nodes; v++ {
				for _, e := range g.Neighbors(v) {
					if d := dist[v] + e.Delay; d < dist[e.To] {
						dist[e.To] = d
					}
				}
			}
		}
		for v := 0; v < cfg.Nodes; v++ {
			if math.Abs(tree.Distance(v)-dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPathDelayMatchesDistance: the delay along the reconstructed path
// must equal the Dijkstra distance.
func TestPathDelayMatchesDistance(t *testing.T) {
	g := testGraph(t, 200, 11)
	tree := g.ShortestPaths(0)
	for dst := 0; dst < g.NumNodes(); dst += 17 {
		delay, _ := g.PathMetrics(tree, dst)
		if math.Abs(delay-tree.Distance(dst)) > 1e-9 {
			t.Errorf("path delay to %d = %v, distance = %v", dst, delay, tree.Distance(dst))
		}
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	var g Graph
	if st := g.Stats(); st != (DegreeStats{}) {
		t.Errorf("Stats of empty graph = %+v", st)
	}
	if !g.Connected() {
		t.Error("empty graph should count as connected")
	}
}
