// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus ablations of ACP's design choices and
// micro-benchmarks of the hot substrate paths.
//
// Figure benchmarks run the full experiment pipeline at a reduced scale
// (10 simulated minutes per run on an 800-node IP graph) and report the
// headline quantities as custom metrics, so `go test -bench=.` doubles
// as a quick smoke reproduction. Regenerate the figures at paper scale
// with `go run ./cmd/acpfig -fig all`.
package acp_test

import (
	"io"
	"testing"
	"time"

	acp "repro"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/placement"
	"repro/internal/simulator"
	"repro/internal/topology"
	"repro/internal/tuning"
	"repro/internal/workload"

	"math/rand"
)

// benchOptions shrinks figure reproductions to benchmark scale.
func benchOptions() acp.FigureOptions {
	return acp.FigureOptions{Seed: 1, DurationScale: 0.01, IPNodes: 800}
}

func benchFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := acp.ReproduceFigure(name, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("empty figure result")
		}
	}
}

// BenchmarkFig5a regenerates Figure 5(a): success rate vs probing ratio
// under request rates 50 and 100.
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "5a") }

// BenchmarkFig5b regenerates Figure 5(b): success rate vs probing ratio
// under low/high/very-high QoS requirements.
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "5b") }

// BenchmarkFig5aParallel regenerates Figure 5(a) with the concurrent
// multi-request driver: the figure's 22 independent simulation cells run
// across GOMAXPROCS workers instead of serially. allocs/op matches the
// serial benchmark; ns/op shows the wall-clock speedup.
func BenchmarkFig5aParallel(b *testing.B) {
	opts := benchOptions()
	opts.Parallel = -1
	for i := 0; i < b.N; i++ {
		tables, err := acp.ReproduceFigure("5a", opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("empty figure result")
		}
	}
}

// BenchmarkFig6a regenerates Figure 6(a): success rate vs request rate
// for all six algorithms.
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a") }

// BenchmarkFig6b regenerates Figure 6(b): control overhead vs request
// rate for Optimal, ACP, and RP.
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b") }

// BenchmarkFig7a regenerates Figure 7(a): success rate vs system size.
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "7a") }

// BenchmarkFig7b regenerates Figure 7(b): overhead vs system size.
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "7b") }

// BenchmarkFig8a regenerates Figure 8(a): success over time under a
// dynamic workload with a fixed probing ratio.
func BenchmarkFig8a(b *testing.B) { benchFigure(b, "8a") }

// BenchmarkFig8b regenerates Figure 8(b): the probing-ratio tuner
// holding a 90% target under the dynamic workload.
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "8b") }

// benchPlatform builds the shared benchmark platform.
func benchPlatform(b *testing.B, componentsPerNode int) *experiment.Platform {
	b.Helper()
	cfg := experiment.DefaultSystemConfig()
	cfg.IPNodes = 800
	cfg.ComponentsPerNode = componentsPerNode
	p, err := experiment.BuildPlatform(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchRun(b *testing.B, p *experiment.Platform, mutate func(*experiment.RunConfig)) {
	b.Helper()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		rc := experiment.DefaultRunConfig(60)
		rc.Duration = 10 * time.Minute
		mutate(&rc)
		res, err := experiment.Run(p, rc)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(100*last.SuccessRate, "success%")
		b.ReportMetric(last.OverheadPerMinute, "msgs/min")
	}
}

// BenchmarkAblationTransient compares composition with and without
// transient resource allocation (§3.3 step 2): disabling it allows
// conflicting admissions during the probing round trip.
func BenchmarkAblationTransient(b *testing.B) {
	p := benchPlatform(b, 1)
	// Saturating load maximises the window for conflicting admissions.
	b.Run("with-transient", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.Phases[0].RatePerMinute = 100
		})
	})
	b.Run("without-transient", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.Phases[0].RatePerMinute = 100
			rc.DisableTransient = true
		})
	})
}

// BenchmarkAblationStaleness compares the coarse threshold-triggered
// global state against the always-fresh (centralized) and frozen
// (never-updated) extremes (§3.2).
func BenchmarkAblationStaleness(b *testing.B) {
	p := benchPlatform(b, 1)
	policies := []struct {
		name   string
		policy experiment.StatePolicy
	}{
		{name: "coarse", policy: experiment.StateCoarse},
		{name: "fresh", policy: experiment.StateFresh},
		{name: "frozen", policy: experiment.StateFrozen},
	}
	for _, tc := range policies {
		b.Run(tc.name, func(b *testing.B) {
			benchRun(b, p, func(rc *experiment.RunConfig) { rc.State = tc.policy })
		})
	}
}

// BenchmarkAblationSelection compares the per-hop candidate ranking
// policies of §3.5: the paper's risk-then-congestion rule against each
// criterion alone and against random selection.
func BenchmarkAblationSelection(b *testing.B) {
	p := benchPlatform(b, 1)
	policies := []struct {
		name string
		sel  core.SelectionPolicy
	}{
		{name: "risk-then-congestion", sel: core.SelectRiskThenCongestion},
		{name: "risk-only", sel: core.SelectRiskOnly},
		{name: "congestion-only", sel: core.SelectCongestionOnly},
		{name: "random", sel: core.SelectRandom},
	}
	for _, tc := range policies {
		b.Run(tc.name, func(b *testing.B) {
			benchRun(b, p, func(rc *experiment.RunConfig) { rc.Selection = tc.sel })
		})
	}
}

// BenchmarkAblationTuner compares a fixed mid probing ratio against the
// self-tuning ratio under the Figure 8 dynamic workload.
func BenchmarkAblationTuner(b *testing.B) {
	p := benchPlatform(b, 2)
	b.Run("fixed-alpha", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.ProbingRatio = 0.3
			rc.MaxProbesPerRequest = 2000
		})
	})
	b.Run("tuned", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.ProbingRatio = 0.1
			rc.MaxProbesPerRequest = 2000
			tcfg := tuning.DefaultConfig()
			tcfg.ErrorThreshold = 0.05
			rc.Tuning = &tcfg
		})
	})
}

// BenchmarkComposeACP measures one ACP composition (probe + commit +
// release) on a warm 400-node system.
func BenchmarkComposeACP(b *testing.B) { benchCompose(b, core.AlgACP) }

// BenchmarkComposeOptimal measures one exhaustive Optimal composition.
func BenchmarkComposeOptimal(b *testing.B) { benchCompose(b, core.AlgOptimal) }

// BenchmarkComposeRandom measures one Random-heuristic composition.
func BenchmarkComposeRandom(b *testing.B) { benchCompose(b, core.AlgRandom) }

func benchCompose(b *testing.B, alg core.Algorithm) {
	b.Helper()
	cfg := acp.DefaultClusterConfig()
	cfg.IPNodes = 800
	cfg.OverlayNodes = 400
	cfg.NumFunctions = 80
	cfg.ComponentsPerNode = 1
	cfg.Algorithm = alg
	cfg.ProbingRatio = 0.3
	cluster, err := acp.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Shutdown()
	graph := acp.NewPathGraph([]acp.FunctionID{0, 1, 2, 3})
	qosReq := acp.QoS{Delay: 100000, LossCost: acp.LossCost(0.9)}
	resReq := []acp.Resources{{CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := cluster.Find(graph, qosReq, resReq, 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Close(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeWalkTracing guards the observability overhead: the same
// ACP compose/release loop with tracing disabled (nil tracer — the
// default) and with spans streaming to a discarded JSONL sink. The
// disabled variant is the regression guard; it must not drift from the
// pre-tracing baseline.
func BenchmarkProbeWalkTracing(b *testing.B) {
	bench := func(b *testing.B, tracer *acp.Tracer) {
		cfg := acp.DefaultClusterConfig()
		cfg.IPNodes = 800
		cfg.OverlayNodes = 400
		cfg.NumFunctions = 80
		cfg.ComponentsPerNode = 1
		cfg.ProbingRatio = 0.3
		cfg.Tracer = tracer
		cluster, err := acp.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Shutdown()
		graph := acp.NewPathGraph([]acp.FunctionID{0, 1, 2, 3})
		qosReq := acp.QoS{Delay: 100000, LossCost: acp.LossCost(0.9)}
		resReq := []acp.Resources{{CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := cluster.Find(graph, qosReq, resReq, 10)
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.Close(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { bench(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		tracer, flush := acp.NewJSONLTracer(io.Discard)
		defer flush()
		bench(b, tracer)
	})
}

// TestDisabledTracerZeroAllocPerHop pins the contract the nil-tracer
// fast path relies on: every per-hop emission on a disabled tracer is a
// pointer check with zero allocations.
func TestDisabledTracerZeroAllocPerHop(t *testing.T) {
	var tr *acp.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.RequestReceived(1, 0)
		pid := tr.NextProbeID()
		tr.ProbeSpawned(1, pid, 0, 2, 1.0)
		tr.CandidatePruned(1, pid, 0, 0, 2, "qos")
		tr.HoldAcquired(1, pid, 0, 2)
		tr.ProbeForwarded(1, pid, 0, 2, 3)
		tr.ProbeReturned(1, pid, 2, 1.0)
		tr.HoldReleased(1, 2)
		tr.Decided(1, 0, "")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f bytes-objects per hop, want 0", allocs)
	}
}

// BenchmarkPipelineThroughput measures data-plane throughput through a
// composed three-stage pipeline.
func BenchmarkPipelineThroughput(b *testing.B) {
	cluster, err := acp.NewCluster(acp.DefaultClusterConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Shutdown()
	graph := acp.NewPathGraph([]acp.FunctionID{0, 1, 2})
	id, err := cluster.Find(graph,
		acp.QoS{Delay: 100000, LossCost: acp.LossCost(0.9)},
		[]acp.Resources{{CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}, {CPU: 1, Memory: 10}}, 10)
	if err != nil {
		b.Fatal(err)
	}
	in, out, err := cluster.Process(id)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range out {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in <- acp.DataUnit{Seq: int64(i)}
	}
	b.StopTimer()
	close(in)
	<-done
}

// BenchmarkTopologyGenerate measures power-law graph generation at the
// paper's 3200-node scale.
func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := topology.Generate(cfg, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPaths measures one Dijkstra pass over the 3200-node
// IP graph — the overlay construction hot path.
func BenchmarkShortestPaths(b *testing.B) {
	g, err := topology.Generate(topology.DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(i % g.NumNodes())
	}
}

// BenchmarkEventEngine measures discrete-event scheduling throughput.
func BenchmarkEventEngine(b *testing.B) {
	e := simulator.New()
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Schedule(time.Duration(i%1000)*time.Millisecond, func() { count++ }); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
	if count != b.N {
		b.Fatalf("ran %d events, want %d", count, b.N)
	}
}

// BenchmarkPlatformBuild measures constructing the full 400-node
// simulation platform (topology + overlay + placement + templates).
func BenchmarkPlatformBuild(b *testing.B) {
	cfg := experiment.DefaultSystemConfig()
	cfg.IPNodes = 800
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BuildPlatform(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPITuner compares the paper's profiling tuner with
// the control-theoretic PI controller (§6 future work) under the
// dynamic workload.
func BenchmarkExtensionPITuner(b *testing.B) {
	p := benchPlatform(b, 2)
	b.Run("profiling-tuner", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.ProbingRatio = 0.1
			rc.MaxProbesPerRequest = 2000
			tcfg := tuning.DefaultConfig()
			tcfg.ErrorThreshold = 0.05
			rc.Tuning = &tcfg
		})
	})
	b.Run("pi-controller", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.ProbingRatio = 0.1
			rc.MaxProbesPerRequest = 2000
			picfg := tuning.DefaultPIConfig()
			rc.PITuning = &picfg
		})
	})
}

// BenchmarkExtensionMigration measures the effect of dynamic component
// placement (§6 future work) under load.
func BenchmarkExtensionMigration(b *testing.B) {
	p := benchPlatform(b, 1)
	b.Run("static-placement", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.Phases[0].RatePerMinute = 80
		})
	})
	b.Run("dynamic-placement", func(b *testing.B) {
		benchRun(b, p, func(rc *experiment.RunConfig) {
			rc.Phases[0].RatePerMinute = 80
			pcfg := placement.DefaultConfig()
			pcfg.Period = 2 * time.Minute
			pcfg.UtilizationGap = 0.25
			rc.Migration = &pcfg
		})
	})
}

// BenchmarkExtensionFailover measures composition under node crashes,
// with and without automatic recomposition of disrupted sessions.
func BenchmarkExtensionFailover(b *testing.B) {
	p := benchPlatform(b, 1)
	run := func(b *testing.B, recompose bool) {
		var last *experiment.Result
		for i := 0; i < b.N; i++ {
			rc := experiment.DefaultRunConfig(60)
			rc.Duration = 10 * time.Minute
			rc.FailuresPerMinute = 1
			rc.RepairTime = 3 * time.Minute
			rc.RecomposeOnFailure = recompose
			res, err := experiment.Run(p, rc)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		if last != nil {
			b.ReportMetric(100*last.SuccessRate, "success%")
			b.ReportMetric(float64(last.Disrupted), "disrupted")
			b.ReportMetric(float64(last.Recomposed), "recovered")
		}
	}
	b.Run("no-recovery", func(b *testing.B) { run(b, false) })
	b.Run("recompose", func(b *testing.B) { run(b, true) })
}

// BenchmarkExtensionSecurity measures the cost of the application-
// specific security-level constraint (§6 future work): requests that
// demand hardened components restrict their candidate sets.
func BenchmarkExtensionSecurity(b *testing.B) {
	p := benchPlatform(b, 2)
	for _, frac := range []struct {
		name string
		frac float64
	}{
		{name: "open", frac: 0},
		{name: "half-secure", frac: 0.5},
		{name: "all-secure", frac: 1},
	} {
		b.Run(frac.name, func(b *testing.B) {
			benchRun(b, p, func(rc *experiment.RunConfig) {
				rc.MaxProbesPerRequest = 2000
				f := frac.frac
				rc.WorkloadOverride = func(w *workload.Config) {
					w.SecureFraction = f
					w.SecureLevel = 2
				}
			})
		})
	}
}
