// Failover: the distributed deployment's availability story (§1 of the
// paper) — node crashes disrupt running stream sessions, and the system
// re-composes them from the surviving components. Runs the same
// simulation twice, without and with automatic recomposition.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scfg := experiment.DefaultSystemConfig()
	scfg.IPNodes = 1600
	platform, err := experiment.BuildPlatform(scfg)
	if err != nil {
		return err
	}

	fmt.Println("40 simulated minutes at 60 reqs/min; one node crash per minute,")
	fmt.Println("crashed nodes repair after 5 minutes")
	fmt.Println()

	for _, recompose := range []bool{false, true} {
		rc := experiment.DefaultRunConfig(60)
		rc.Duration = 40 * time.Minute
		rc.FailuresPerMinute = 1
		rc.RepairTime = 5 * time.Minute
		rc.RecomposeOnFailure = recompose

		res, err := experiment.Run(platform, rc)
		if err != nil {
			return err
		}
		mode := "crash only     "
		if recompose {
			mode = "with recompose "
		}
		recovered := "-"
		if recompose {
			recovered = fmt.Sprintf("%d/%d sessions recovered", res.Recomposed, res.Disrupted)
		}
		fmt.Printf("%s  success %.1f%%  crashes %d  disrupted %d  %s\n",
			mode, 100*res.SuccessRate, res.Failures, res.Disrupted, recovered)
	}
	fmt.Println()
	fmt.Println("recomposition rebuilds disrupted applications on surviving nodes,")
	fmt.Println("exercising the same ACP probing path as first-time composition")
	return nil
}
