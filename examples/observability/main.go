// Observability: trace the probe lifecycle of ACP compositions and read
// the cluster's instrument registry. The tracer records every span event
// (request received, probe spawned/forwarded, candidate pruned with its
// reason, transient hold acquired/released, probe returned, composition
// committed or rolled back); the registry counts find outcomes.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"

	acp "repro"
)

const (
	fnIngest acp.FunctionID = 0
	fnDetect acp.FunctionID = 1
	fnAlert  acp.FunctionID = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Wire a memory tracer and an instrument registry into the
	//    cluster. Both are nil-safe: omit them and the hot path pays only
	//    a pointer check.
	tracer, events := acp.NewMemoryTracer()
	registry := acp.NewMetricsRegistry()
	cfg := acp.DefaultClusterConfig()
	cfg.Tracer = tracer
	cfg.Registry = registry
	cluster, err := acp.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	// 2. Compose a few sessions; each Find drives one traced probe walk.
	graph := acp.NewPathGraph([]acp.FunctionID{fnIngest, fnDetect, fnAlert})
	resources := []acp.Resources{
		{CPU: 10, Memory: 100}, {CPU: 6, Memory: 60}, {CPU: 4, Memory: 40},
	}
	for i := 0; i < 3; i++ {
		session, err := cluster.Find(graph,
			acp.QoS{Delay: 500, LossCost: acp.LossCost(0.05)}, resources, 200)
		if err != nil {
			return fmt.Errorf("compose %d: %w", i, err)
		}
		defer cluster.Close(session)
	}

	// 3. Summarise the recorded spans: how many probes each request
	//    spawned, and why candidates were pruned.
	spawned := make(map[int64]int)
	pruned := make(map[string]int)
	for _, e := range events() {
		switch e.Type {
		case "probe.spawned":
			spawned[e.Req]++
		case "candidate.pruned":
			pruned[string(e.Reason)]++
		}
	}
	fmt.Println("probes spawned per request:")
	for req := int64(1); req <= int64(len(spawned)); req++ {
		fmt.Printf("  request %d: %d probes\n", req, spawned[req])
	}
	fmt.Println("prune reasons:")
	for reason, n := range pruned {
		fmt.Printf("  %-16s %d\n", reason, n)
	}

	// 4. The instrument registry snapshot doubles as a plain-text report
	//    (acpsim -metrics-out writes the same format).
	fmt.Println("instruments:")
	return registry.WriteText(os.Stdout)
}
