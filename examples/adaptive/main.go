// Adaptive: the probing-ratio tuner in action — the Figure 8(b)
// experiment as a runnable program. A 400-node simulated system faces a
// workload that doubles mid-run; the tuner raises the probing ratio to
// defend a 90% composition success target and relaxes it when the load
// drops.
//
//	go run ./examples/adaptive            # ~40 simulated minutes
//	go run ./examples/adaptive -scale 1   # the full 150-minute run
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
	"repro/internal/tuning"
	"repro/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.25, "duration scale (1.0 = the paper's 150 minutes)")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	scfg := experiment.DefaultSystemConfig()
	scfg.ComponentsPerNode = 2 // ten candidates per function (§3.4 example)
	platform, err := experiment.BuildPlatform(scfg)
	if err != nil {
		return err
	}

	total := time.Duration(float64(150*time.Minute) * scale)
	if total < 15*time.Minute {
		total = 15 * time.Minute
	}
	phases := []workload.Phase{
		{Until: total / 3, RatePerMinute: 40},
		{Until: 2 * total / 3, RatePerMinute: 80}, // the load spike
		{Until: 1 << 62, RatePerMinute: 60},
	}

	rc := experiment.DefaultRunConfig(0)
	rc.Phases = phases
	rc.Duration = total
	rc.ProbingRatio = 0.1 // the tuner's base ratio
	rc.MaxProbesPerRequest = 2000
	tcfg := tuning.DefaultConfig() // 90% target
	tcfg.ErrorThreshold = 0.05
	rc.Tuning = &tcfg
	rc.TraceCap = 100

	fmt.Printf("simulating %v: rate 40 -> 80 (t=%v) -> 60 (t=%v), target success 90%%\n",
		total, total/3, 2*total/3)
	res, err := experiment.Run(platform, rc)
	if err != nil {
		return err
	}

	ratio := make(map[time.Duration]float64, len(res.RatioSeries))
	for _, p := range res.RatioSeries {
		ratio[p.At] = p.Value
	}
	fmt.Println("\n  minute  success  alpha   ")
	fmt.Println("  ------  -------  --------")
	for _, p := range res.SuccessSeries {
		bar := ""
		for i := 0.0; i < ratio[p.At]; i += 0.1 {
			bar += "#"
		}
		fmt.Printf("  %6.0f  %6.1f%%  %.2f %s\n", p.At.Minutes(), 100*p.Value, ratio[p.At], bar)
	}
	fmt.Printf("\ncumulative success %.1f%% over %d requests; tuner re-profiled %d times\n",
		100*res.SuccessRate, res.Requests, res.Reprofiles)
	return nil
}
