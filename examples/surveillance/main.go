// Surveillance: the paper's motivating video-surveillance scenario
// (Figure 1(c)) — a two-branch DAG that splits a camera stream into a
// face-recognition branch and a motion-detection branch, then correlates
// the two at a joint alarm stage.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"sync"

	acp "repro"
)

// Function graph: capture -> { faceDetect, motionDetect } -> correlate.
const (
	fnCapture      acp.FunctionID = 0
	fnFaceDetect   acp.FunctionID = 1
	fnMotionDetect acp.FunctionID = 2
	fnCorrelate    acp.FunctionID = 3
)

// frame is a toy video frame.
type frame struct {
	Camera   int
	Luma     int // average brightness, drives "detections"
	Face     bool
	Motion   bool
	Verdict  string
	Original int64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := acp.DefaultClusterConfig()
	cfg.Seed = 7
	cluster, err := acp.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	cluster.RegisterFunction(fnCapture, func(u acp.DataUnit) []acp.DataUnit {
		f := u.Payload.(frame)
		f.Original = u.Seq
		u.Payload = f
		return []acp.DataUnit{u}
	})
	cluster.RegisterFunction(fnFaceDetect, func(u acp.DataUnit) []acp.DataUnit {
		f := u.Payload.(frame)
		f.Face = f.Luma%3 == 0 // toy detector
		u.Payload = f
		return []acp.DataUnit{u}
	})
	cluster.RegisterFunction(fnMotionDetect, func(u acp.DataUnit) []acp.DataUnit {
		f := u.Payload.(frame)
		f.Motion = f.Luma%2 == 0
		u.Payload = f
		return []acp.DataUnit{u}
	})
	cluster.RegisterFunction(fnCorrelate, func(u acp.DataUnit) []acp.DataUnit {
		f := u.Payload.(frame)
		switch {
		case f.Face:
			f.Verdict = "face"
		case f.Motion:
			f.Verdict = "motion"
		default:
			return nil // nothing of interest in this branch copy
		}
		u.Payload = f
		return []acp.DataUnit{u}
	})

	graph, err := acp.NewBranchGraph(fnCapture,
		[]acp.FunctionID{fnFaceDetect},
		[]acp.FunctionID{fnMotionDetect},
		fnCorrelate)
	if err != nil {
		return err
	}

	// Video branches are bandwidth-hungry and loss-sensitive.
	session, err := cluster.Find(graph,
		acp.QoS{Delay: 800, LossCost: acp.LossCost(0.02)},
		[]acp.Resources{
			{CPU: 15, Memory: 200}, // capture
			{CPU: 25, Memory: 300}, // face detection is expensive
			{CPU: 10, Memory: 120}, // motion detection
			{CPU: 8, Memory: 100},  // correlation
		},
		400, // kbps per virtual link
	)
	if err != nil {
		return fmt.Errorf("compose surveillance app: %w", err)
	}
	desc, err := cluster.Describe(session)
	if err != nil {
		return err
	}
	fmt.Printf("surveillance session %d composed across nodes:", session)
	for _, pc := range desc.Components {
		fmt.Printf(" %d", pc.Node)
	}
	fmt.Printf("\n  aggregated %s, phi=%.3f\n", desc.QoS, desc.Phi)

	in, out, err := cluster.Process(session)
	if err != nil {
		return err
	}
	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		for i := 0; i < 30; i++ {
			in <- acp.DataUnit{Seq: int64(i), Payload: frame{Camera: 1, Luma: i}}
		}
		close(in)
	}()
	alarms := map[string]int{}
	for u := range out {
		f := u.Payload.(frame)
		alarms[f.Verdict]++
	}
	feeders.Wait()
	fmt.Printf("  alarms: %d face, %d motion\n", alarms["face"], alarms["motion"])
	return cluster.Close(session)
}
