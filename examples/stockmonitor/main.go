// Stockmonitor: the paper's stock-price-tracing scenario — a pipeline of
// tick parsing, symbol filtering, windowed aggregation, and fraud-pattern
// matching, composed under a tight latency budget. Demonstrates QoS
// infeasibility handling: the example first asks for an impossible
// latency, receives the middleware's "null sessionId" (ErrNoComposition),
// and retries with a realistic budget.
//
//	go run ./examples/stockmonitor
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	acp "repro"
)

const (
	fnParseTick acp.FunctionID = 4
	fnFilterSym acp.FunctionID = 5
	fnWindowAgg acp.FunctionID = 6
	fnFraudScan acp.FunctionID = 7
)

type tick struct {
	Symbol string
	Price  float64
	Avg    float64
	Alert  bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := acp.DefaultClusterConfig()
	cfg.Seed = 11
	cluster, err := acp.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	cluster.RegisterFunction(fnParseTick, func(u acp.DataUnit) []acp.DataUnit {
		return []acp.DataUnit{u} // ticks arrive pre-parsed in this toy feed
	})
	cluster.RegisterFunction(fnFilterSym, func(u acp.DataUnit) []acp.DataUnit {
		if u.Payload.(tick).Symbol == "ACME" {
			return []acp.DataUnit{u}
		}
		return nil
	})
	var (
		sum   float64
		count int
	)
	cluster.RegisterFunction(fnWindowAgg, func(u acp.DataUnit) []acp.DataUnit {
		t := u.Payload.(tick)
		sum += t.Price
		count++
		t.Avg = sum / float64(count)
		u.Payload = t
		return []acp.DataUnit{u}
	})
	cluster.RegisterFunction(fnFraudScan, func(u acp.DataUnit) []acp.DataUnit {
		t := u.Payload.(tick)
		// Toy surveillance rule: a tick 20% above the running average.
		t.Alert = t.Price > 1.2*t.Avg
		u.Payload = t
		return []acp.DataUnit{u}
	})

	graph := acp.NewPathGraph([]acp.FunctionID{fnParseTick, fnFilterSym, fnWindowAgg, fnFraudScan})
	resources := []acp.Resources{
		{CPU: 8, Memory: 64},
		{CPU: 4, Memory: 32},
		{CPU: 12, Memory: 256},
		{CPU: 16, Memory: 128},
	}

	// An impossible 1 ms end-to-end budget: composition must fail with
	// the middleware's null session.
	_, err = cluster.Find(graph, acp.QoS{Delay: 1, LossCost: acp.LossCost(0.001)}, resources, 150)
	if !errors.Is(err, acp.ErrNoComposition) {
		return fmt.Errorf("expected ErrNoComposition for a 1ms budget, got %v", err)
	}
	fmt.Println("1ms latency budget: correctly rejected (no qualified composition)")

	// A realistic budget composes fine.
	session, err := cluster.Find(graph, acp.QoS{Delay: 600, LossCost: acp.LossCost(0.05)}, resources, 150)
	if err != nil {
		return fmt.Errorf("compose stock monitor: %w", err)
	}
	desc, err := cluster.Describe(session)
	if err != nil {
		return err
	}
	fmt.Printf("600ms budget: composed with %s (phi=%.3f)\n", desc.QoS, desc.Phi)

	in, out, err := cluster.Process(session)
	if err != nil {
		return err
	}
	feed := []tick{
		{Symbol: "ACME", Price: 100},
		{Symbol: "OTHR", Price: 5},
		{Symbol: "ACME", Price: 102},
		{Symbol: "ACME", Price: 99},
		{Symbol: "ACME", Price: 140}, // spike: should alert
		{Symbol: "OTHR", Price: 6},
		{Symbol: "ACME", Price: 101},
	}
	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		for i, t := range feed {
			in <- acp.DataUnit{Seq: int64(i), Payload: t}
		}
		close(in)
	}()
	for u := range out {
		t := u.Payload.(tick)
		marker := " "
		if t.Alert {
			marker = "!"
		}
		fmt.Printf("  %s %s %.0f (avg %.1f)\n", marker, t.Symbol, t.Price, t.Avg)
	}
	feeders.Wait()
	return cluster.Close(session)
}
