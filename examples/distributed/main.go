// Distributed: the ACP protocol running as an actual distributed system
// — one goroutine per overlay node, probes as messages between node
// mailboxes, sharded resource state, and best-effort global-state
// broadcasts. Twelve clients compose concurrently; contention is
// resolved by transient allocations and commit acknowledgements, not by
// any global lock.
//
//	go run ./examples/distributed
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/component"
	"repro/internal/dist"
	"repro/internal/qos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := dist.DefaultConfig()
	cfg.OverlayNodes = 48
	cfg.IPNodes = 384
	cluster, err := dist.New(cfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()
	fmt.Printf("started %d node goroutines\n\n", cluster.NumNodes())

	type outcome struct {
		client int
		comp   *dist.Composition
		req    *component.Request
		err    error
		took   time.Duration
	}
	const clients = 12
	results := make([]outcome, clients)

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &component.Request{
				Graph:        component.NewPathGraph([]component.FunctionID{0, 1, 2}),
				QoSReq:       qos.Vector{Delay: 1000, LossCost: qos.LossCost(0.1)},
				ResReq:       []qos.Resources{{CPU: 12, Memory: 120}, {CPU: 12, Memory: 120}, {CPU: 12, Memory: 120}},
				BandwidthReq: 200,
				Client:       i * 3 % cluster.NumNodes(),
				Duration:     5 * time.Minute,
			}
			start := time.Now()
			comp, err := cluster.Compose(req)
			results[i] = outcome{client: req.Client, comp: comp, req: req, err: err, took: time.Since(start)}
		}(i)
	}
	wg.Wait()

	succeeded := 0
	for i, r := range results {
		switch {
		case errors.Is(r.err, dist.ErrNoComposition):
			fmt.Printf("client %2d (node %2d): no qualified composition (contention)\n", i, r.client)
		case r.err != nil:
			return r.err
		default:
			succeeded++
			fmt.Printf("client %2d (node %2d): composed phi=%.2f across nodes", i, r.client, r.comp.Phi)
			for _, id := range r.comp.Components {
				fmt.Printf(" %d", cluster.ComponentNode(id))
			}
			fmt.Printf(" in %v\n", r.took.Round(time.Millisecond))
		}
	}
	fmt.Printf("\n%d/%d concurrent compositions succeeded\n", succeeded, clients)

	for _, r := range results {
		if r.err == nil {
			cluster.Release(r.req, r.comp)
		}
	}
	return nil
}
