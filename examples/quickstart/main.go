// Quickstart: compose a three-stage stream processing application with
// ACP on an in-process cluster and push a data stream through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	acp "repro"
)

// The application: parse -> filter -> aggregate over a stream of numbers.
const (
	fnParse     acp.FunctionID = 0
	fnFilter    acp.FunctionID = 1
	fnAggregate acp.FunctionID = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Start a cluster: 64 stream processing nodes on a simulated
	//    512-node power-law Internet topology.
	cluster, err := acp.NewCluster(acp.DefaultClusterConfig())
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	// 2. Register the per-unit work of each stream processing function.
	cluster.RegisterFunction(fnParse, func(u acp.DataUnit) []acp.DataUnit {
		u.Payload = u.Payload.(int) * 10 // pretend-parse: scale raw input
		return []acp.DataUnit{u}
	})
	cluster.RegisterFunction(fnFilter, func(u acp.DataUnit) []acp.DataUnit {
		if u.Payload.(int)%20 == 0 { // keep even tens only
			return []acp.DataUnit{u}
		}
		return nil
	})
	sum := 0
	cluster.RegisterFunction(fnAggregate, func(u acp.DataUnit) []acp.DataUnit {
		sum += u.Payload.(int)
		u.Payload = sum // running total
		return []acp.DataUnit{u}
	})

	// 3. Find: ACP composes the least-loaded qualified component graph
	//    subject to the QoS and resource requirements (§2.2).
	graph := acp.NewPathGraph([]acp.FunctionID{fnParse, fnFilter, fnAggregate})
	session, err := cluster.Find(graph,
		acp.QoS{Delay: 500 /* ms end-to-end */, LossCost: acp.LossCost(0.05)},
		[]acp.Resources{
			{CPU: 10, Memory: 100},
			{CPU: 5, Memory: 50},
			{CPU: 8, Memory: 80},
		},
		200, // kbps per virtual link
	)
	if err != nil {
		return fmt.Errorf("compose: %w", err)
	}
	desc, err := cluster.Describe(session)
	if err != nil {
		return err
	}
	fmt.Printf("composed session %d (phi=%.3f, %s):\n", session, desc.Phi, desc.QoS)
	for _, pc := range desc.Components {
		fmt.Printf("  position %d: function %d -> component %d on node %d\n",
			pc.Position, pc.Function, pc.Component, pc.Node)
	}

	// 4. Process: stream data units through the composed pipeline.
	in, out, err := cluster.Process(session)
	if err != nil {
		return err
	}
	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		for i := 1; i <= 10; i++ {
			in <- acp.DataUnit{Seq: int64(i), Payload: i}
		}
		close(in)
	}()
	for u := range out {
		fmt.Printf("  unit %d -> running total %v\n", u.Seq, u.Payload)
	}
	feeders.Wait()

	// 5. Close tears the session down and frees its resources.
	return cluster.Close(session)
}
