package acp

import (
	"io"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/runtime"
)

// Re-exported identifiers: the public surface mirrors the internal
// packages so downstream users never import repro/internal directly.
type (
	// Cluster is a live in-process distributed stream processing system
	// with the paper's Find / Process / Close session interface.
	Cluster = runtime.Cluster
	// ClusterConfig sizes and tunes a cluster.
	ClusterConfig = runtime.Config
	// SessionID identifies a composed stream processing session.
	SessionID = runtime.SessionID
	// DataUnit is one element of a data stream.
	DataUnit = runtime.DataUnit
	// ProcessorFunc is the per-unit work of a stream processing function.
	ProcessorFunc = runtime.ProcessorFunc

	// FunctionID identifies an atomic stream processing function.
	FunctionID = component.FunctionID
	// Graph is a function graph: the template of an application.
	Graph = component.Graph
	// QoS is an additive, minimum-optimal QoS vector.
	QoS = qos.Vector
	// Resources is an end-system resource vector.
	Resources = qos.Resources

	// Algorithm selects a composition algorithm.
	Algorithm = core.Algorithm

	// FigureOptions scales a paper-figure reproduction.
	FigureOptions = experiment.Options
	// ResultTable is a printable experiment result.
	ResultTable = experiment.Table

	// Tracer records probe-lifecycle span events; wire one into a
	// ClusterConfig to observe composition decisions.
	Tracer = obs.Tracer
	// TraceEvent is one recorded span event.
	TraceEvent = obs.Event
	// MetricsRegistry is a concurrency-safe instrument registry
	// (counters, gauges, histograms).
	MetricsRegistry = obs.Registry
)

// Composition algorithms (§4.1 of the paper).
const (
	ACP     = core.AlgACP
	Optimal = core.AlgOptimal
	SP      = core.AlgSP
	RP      = core.AlgRP
	Random  = core.AlgRandom
	Static  = core.AlgStatic
)

// Sentinel errors of the session interface.
var (
	// ErrNoComposition is Find's "null sessionId": no qualified
	// composition exists for the request.
	ErrNoComposition = runtime.ErrNoComposition
	// ErrUnknownSession marks session IDs never issued or already closed.
	ErrUnknownSession = runtime.ErrUnknownSession
)

// NewCluster builds a live in-process cluster: it generates the network
// substrate, deploys components, and starts the ACP composition engine.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return runtime.NewCluster(cfg)
}

// DefaultClusterConfig returns a laptop-sized cluster configuration.
func DefaultClusterConfig() ClusterConfig {
	return runtime.DefaultConfig()
}

// NewPathGraph builds a pipeline function graph.
func NewPathGraph(functions []FunctionID) *Graph {
	return component.NewPathGraph(functions)
}

// NewBranchGraph builds the paper's two-branch DAG shape: a shared
// source, two parallel branches, and a shared sink (Figure 1(c)).
func NewBranchGraph(source FunctionID, branch1, branch2 []FunctionID, sink FunctionID) (*Graph, error) {
	return component.NewBranchGraph(source, branch1, branch2, sink)
}

// NewJSONLTracer returns a tracer streaming span events to w as JSON
// lines, plus the flush to call when done.
func NewJSONLTracer(w io.Writer) (*Tracer, func() error) {
	sink := obs.NewJSONLSink(w)
	return obs.New(sink), sink.Flush
}

// NewMemoryTracer returns a tracer collecting span events in memory and
// the accessor for what it collected.
func NewMemoryTracer() (*Tracer, func() []TraceEvent) {
	sink := &obs.MemorySink{}
	return obs.New(sink), sink.Events
}

// NewMetricsRegistry returns an empty instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ReadTraceEvents parses a JSONL span-event stream (as written by
// NewJSONLTracer or acpsim -trace-out).
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// LossProb converts an additive loss cost back to a probability.
func LossProb(cost float64) float64 { return qos.LossProb(cost) }

// LossCost converts a loss probability into its additive cost, the form
// QoS vectors carry (footnote 3 of the paper).
func LossCost(p float64) float64 { return qos.LossCost(p) }

// ReproduceFigure regenerates one figure of the paper's evaluation
// ("5a", "5b", "6", "6a", "6b", "7", "7a", "7b", "8a", "8b"), or the
// beyond-the-paper "faults" degradation sweep, at the given options,
// returning its result tables.
func ReproduceFigure(name string, opts FigureOptions) ([]*ResultTable, error) {
	fn, ok := experiment.Figures()[name]
	if !ok {
		return nil, &UnknownFigureError{Name: name}
	}
	return fn(opts)
}

// FigureNames lists the figure identifiers ReproduceFigure accepts.
func FigureNames() []string { return experiment.FigureNames() }

// UnknownFigureError reports a figure identifier ReproduceFigure does
// not recognise.
type UnknownFigureError struct {
	Name string
}

func (e *UnknownFigureError) Error() string {
	return "acp: unknown figure " + e.Name
}
