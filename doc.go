// Package acp is a Go implementation of Adaptive Composition Probing
// (ACP) — the optimal component composition system for scalable
// distributed stream processing published by Gu, Yu, and Nahrstedt at
// ICDCS 2005 — together with the full simulation substrate used in the
// paper's evaluation.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core — the ACP protocol and the comparison algorithms
//     (exhaustive Optimal, SP, RP, Random, Static);
//   - internal/topology, internal/overlay — the power-law IP network and
//     the stream processing overlay mesh;
//   - internal/state — the resource ledger and hierarchical (precise
//     local / coarse global) state management;
//   - internal/tuning — the probing-ratio tuner that holds a target
//     composition success rate;
//   - internal/runtime — a live in-process cluster offering the paper's
//     Find / Process / Close session interface with a goroutine-per-
//     component data plane;
//   - internal/experiment — the simulation harness that regenerates
//     every figure of the paper's evaluation.
//
// Two entry points cover most uses. NewCluster starts a live in-process
// stream processing system:
//
//	cluster, err := acp.NewCluster(acp.DefaultClusterConfig())
//	// handle err
//	defer cluster.Shutdown()
//
//	graph := acp.NewPathGraph([]acp.FunctionID{0, 1, 2})
//	id, err := cluster.Find(graph, qosReq, resReq, 200 /* kbps */)
//	// handle err
//	in, out, err := cluster.Process(id)
//	// stream data units through in/out ...
//	cluster.Close(id)
//
// ReproduceFigure regenerates a paper experiment:
//
//	tables, err := acp.ReproduceFigure("6a", acp.FigureOptions{})
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-versus-measured comparison of every table and figure.
package acp
