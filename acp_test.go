package acp_test

import (
	"errors"
	"testing"

	acp "repro"
)

func testClusterConfig() acp.ClusterConfig {
	cfg := acp.DefaultClusterConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	cluster, err := acp.NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	cluster.RegisterFunction(1, func(u acp.DataUnit) []acp.DataUnit {
		u.Payload = u.Payload.(int) + 100
		return []acp.DataUnit{u}
	})

	graph := acp.NewPathGraph([]acp.FunctionID{0, 1})
	id, err := cluster.Find(graph,
		acp.QoS{Delay: 100000, LossCost: acp.LossCost(0.9)},
		[]acp.Resources{{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}},
		100)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := cluster.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		in <- acp.DataUnit{Seq: 1, Payload: 7}
		close(in)
	}()
	got := <-out
	if got.Payload.(int) != 107 {
		t.Errorf("payload = %v, want 107", got.Payload)
	}
	if _, open := <-out; open {
		t.Error("output channel not closed after drain")
	}
	if err := cluster.Close(id); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBranchGraph(t *testing.T) {
	g, err := acp.NewBranchGraph(0, []acp.FunctionID{1}, []acp.FunctionID{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPositions() != 4 {
		t.Errorf("positions = %d", g.NumPositions())
	}
}

func TestFacadeLossRoundTrip(t *testing.T) {
	if got := acp.LossProb(acp.LossCost(0.25)); got < 0.2499 || got > 0.2501 {
		t.Errorf("round trip = %v", got)
	}
}

func TestReproduceFigureUnknown(t *testing.T) {
	_, err := acp.ReproduceFigure("99z", acp.FigureOptions{})
	var unknown *acp.UnknownFigureError
	if !errors.As(err, &unknown) || unknown.Name != "99z" {
		t.Errorf("err = %v", err)
	}
}

func TestFigureNames(t *testing.T) {
	names := acp.FigureNames()
	if len(names) != 13 {
		t.Errorf("FigureNames = %v", names)
	}
	for _, want := range []string{"faults", "adaptation", "fairness"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("FigureNames missing %s sweep: %v", want, names)
		}
	}
}

func TestAlgorithmConstants(t *testing.T) {
	if acp.ACP.String() != "ACP" || acp.Optimal.String() != "Optimal" {
		t.Error("algorithm constants miswired")
	}
	if acp.SP.String() != "SP" || acp.RP.String() != "RP" {
		t.Error("probing baselines miswired")
	}
	if acp.Random.String() != "Random" || acp.Static.String() != "Static" {
		t.Error("heuristic baselines miswired")
	}
}
